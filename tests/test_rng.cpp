#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace acp::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(99);
  const auto first = a.next();
  a.reseed(99);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(7);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next() == c2.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.5);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 7.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(17);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.exponential(-1.0), PreconditionError);
}

TEST(Rng, PoissonMeanSmall) {
  Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, PoissonMeanLargeUsesNormalApprox) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(19);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(29);
  for (int i = 0; i < 5000; ++i) ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ZipfFavorsSmallRanks) {
  Rng rng(31);
  std::size_t ones = 0, tens = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto k = rng.zipf(10, 1.0);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 10u);
    if (k == 1) ++ones;
    if (k == 10) ++tens;
  }
  EXPECT_GT(ones, tens * 5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementProperties) {
  Rng rng(41);
  const auto sample = rng.sample_without_replacement(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (auto s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleAllElements) {
  Rng rng(43);
  const auto sample = rng.sample_without_replacement(5, 5);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(43);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), PreconditionError);
}

// Property sweep: `below(n)` is unbiased enough that each value's frequency
// is within 20% of uniform across a range of n.
class RngBelowUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBelowUniformity, RoughlyUniform) {
  const std::uint64_t n = GetParam();
  Rng rng(1000 + n);
  std::vector<std::size_t> counts(n, 0);
  const std::size_t draws = 20000 * n;
  for (std::size_t i = 0; i < draws; ++i) ++counts[rng.below(n)];
  const double expected = static_cast<double>(draws) / static_cast<double>(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]), expected, expected * 0.2)
        << "value " << v << " of n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallRanges, RngBelowUniformity, ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace acp::util
