// Tests for the synchronous composition searches: exhaustive (with its
// bound-based pruning cross-checked against a naive brute force), guided
// beam search, random/static assignment, and path merging.
#include <gtest/gtest.h>

#include <memory>

#include "core/search.h"
#include "test_helpers.h"
#include "net/topology.h"
#include "workload/generator.h"

namespace acp::core {
namespace {

using stream::ComponentGraph;
using stream::ComponentId;
using stream::FnNodeIndex;
using stream::QoSVector;
using stream::ResourceVector;

struct SearchFixture : ::testing::Test {
  void SetUp() override {
    util::Rng rng(42);
    net::TopologyConfig tc;
    tc.node_count = 200;
    ip = net::generate_power_law_topology(tc, rng);
    net::OverlayConfig oc;
    oc.member_count = 12;
    util::Rng orng(43);
    mesh = std::make_unique<net::OverlayMesh>(ip, oc, orng);
    util::Rng crng(44);
    sys = std::make_unique<stream::StreamSystem>(*mesh,
                                                 stream::FunctionCatalog::generate(6, crng));
    util::Rng drng(45);
    for (stream::NodeId n = 0; n < sys->node_count(); ++n) {
      sys->set_node_capacity(n, ResourceVector(100.0, 1000.0));
    }
    // A compatible function chain with 3 candidates per function.
    chain = acp::testing::compatible_chain(sys->catalog(), 3);
    for (stream::FunctionId f : chain) {
      for (int i = 0; i < 3; ++i) {
        sys->add_component(f, static_cast<stream::NodeId>(drng.below(sys->node_count())),
                           QoSVector::from_metrics(drng.uniform(5.0, 20.0), 0.001));
      }
    }
  }

  std::vector<stream::FunctionId> chain;

  workload::Request path_request() {
    workload::Request req;
    req.id = 1;
    req.graph.add_node(chain[0], ResourceVector(10.0, 100.0));
    req.graph.add_node(chain[1], ResourceVector(10.0, 100.0));
    req.graph.add_node(chain[2], ResourceVector(10.0, 100.0));
    req.graph.add_edge(0, 1, 100.0);
    req.graph.add_edge(1, 2, 100.0);
    req.qos_req = QoSVector::from_metrics(2000.0, 0.5);
    return req;
  }

  workload::Request dag_request() {
    workload::Request req;
    req.id = 2;
    // 0 → {1, 2} → 3: both branches use the chain's middle function.
    req.graph.add_node(chain[0], ResourceVector(10.0, 100.0));
    req.graph.add_node(chain[1], ResourceVector(10.0, 100.0));
    req.graph.add_node(chain[1], ResourceVector(10.0, 100.0));
    req.graph.add_node(chain[2], ResourceVector(10.0, 100.0));
    req.graph.add_edge(0, 1, 100.0);
    req.graph.add_edge(1, 3, 100.0);
    req.graph.add_edge(0, 2, 100.0);
    req.graph.add_edge(2, 3, 100.0);
    req.qos_req = QoSVector::from_metrics(2000.0, 0.5);
    return req;
  }

  /// Naive reference: enumerate the full candidate cross-product via
  /// ComponentGraph::qualified / congestion_aggregation and return min-φ.
  std::optional<double> brute_force_best_phi(const workload::Request& req) {
    std::vector<const std::vector<ComponentId>*> cand_lists;
    for (FnNodeIndex i = 0; i < req.graph.node_count(); ++i) {
      cand_lists.push_back(&sys->components_providing(req.graph.node(i).function));
      if (cand_lists.back()->empty()) return std::nullopt;
    }
    std::optional<double> best;
    std::vector<std::size_t> idx(req.graph.node_count(), 0);
    for (;;) {
      ComponentGraph g(req.graph);
      for (FnNodeIndex i = 0; i < req.graph.node_count(); ++i) {
        g.assign(i, (*cand_lists[i])[idx[i]]);
      }
      if (g.qualified(*sys, sys->true_state(), req.qos_req, 0.0)) {
        const double phi = g.congestion_aggregation(*sys, sys->true_state(), 0.0);
        if (!best || phi < *best) best = phi;
      }
      // Odometer increment.
      std::size_t d = 0;
      while (d < idx.size() && ++idx[d] == cand_lists[d]->size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == idx.size()) break;
    }
    return best;
  }

  net::Graph ip;
  std::unique_ptr<net::OverlayMesh> mesh;
  std::unique_ptr<stream::StreamSystem> sys;
};

TEST_F(SearchFixture, ExhaustiveMatchesBruteForceOnPath) {
  const auto req = path_request();
  const auto expected = brute_force_best_phi(req);
  SearchStats stats;
  const auto found = exhaustive_best(*sys, req, sys->true_state(), 0.0, &stats);
  ASSERT_EQ(found.has_value(), expected.has_value());
  if (found) {
    EXPECT_NEAR(found->congestion_aggregation(*sys, sys->true_state(), 0.0), *expected, 1e-9);
    EXPECT_TRUE(found->qualified(*sys, sys->true_state(), req.qos_req, 0.0));
  }
}

TEST_F(SearchFixture, ExhaustiveMatchesBruteForceOnDag) {
  const auto req = dag_request();
  const auto expected = brute_force_best_phi(req);
  const auto found = exhaustive_best(*sys, req, sys->true_state(), 0.0);
  ASSERT_EQ(found.has_value(), expected.has_value());
  if (found) {
    EXPECT_NEAR(found->congestion_aggregation(*sys, sys->true_state(), 0.0), *expected, 1e-9);
  }
}

TEST_F(SearchFixture, ExhaustiveMatchesBruteForceUnderLoad) {
  // Load a few nodes so feasibility/pruning paths are exercised.
  util::Rng rng(9);
  for (int i = 0; i < 6; ++i) {
    sys->commit_node_direct(100 + i, static_cast<stream::NodeId>(rng.below(sys->node_count())),
                            ResourceVector(70.0, 700.0), 0.0);
  }
  for (const auto& req : {path_request(), dag_request()}) {
    const auto expected = brute_force_best_phi(req);
    const auto found = exhaustive_best(*sys, req, sys->true_state(), 0.0);
    ASSERT_EQ(found.has_value(), expected.has_value());
    if (found) {
      EXPECT_NEAR(found->congestion_aggregation(*sys, sys->true_state(), 0.0), *expected, 1e-9);
    }
  }
}

TEST_F(SearchFixture, ExhaustiveRespectsQoSBound) {
  auto req = path_request();
  req.qos_req = QoSVector::from_metrics(0.001, 0.000001);  // impossible
  EXPECT_FALSE(exhaustive_best(*sys, req, sys->true_state(), 0.0).has_value());
}

TEST_F(SearchFixture, GuidedNeverBeatsExhaustive) {
  const auto req = path_request();
  const auto best = exhaustive_best(*sys, req, sys->true_state(), 0.0);
  ASSERT_TRUE(best.has_value());
  const double best_phi = best->congestion_aggregation(*sys, sys->true_state(), 0.0);
  for (double alpha : {0.1, 0.3, 0.7, 1.0}) {
    const auto g =
        guided_search(*sys, req, alpha, sys->true_state(), sys->true_state(), 0.0);
    if (g) {
      const double phi = g->congestion_aggregation(*sys, sys->true_state(), 0.0);
      EXPECT_GE(phi, best_phi - 1e-9) << "alpha=" << alpha;
      EXPECT_TRUE(g->qualified(*sys, sys->true_state(), req.qos_req, 0.0));
    }
  }
}

TEST_F(SearchFixture, GuidedAtFullAlphaMatchesExhaustiveOnPath) {
  const auto req = path_request();
  const auto best = exhaustive_best(*sys, req, sys->true_state(), 0.0);
  const auto g = guided_search(*sys, req, 1.0, sys->true_state(), sys->true_state(), 0.0,
                               0.05, nullptr, /*beam_cap=*/100000);
  ASSERT_TRUE(best.has_value());
  ASSERT_TRUE(g.has_value());
  EXPECT_NEAR(g->congestion_aggregation(*sys, sys->true_state(), 0.0),
              best->congestion_aggregation(*sys, sys->true_state(), 0.0), 1e-9);
}

TEST_F(SearchFixture, RandomAssignmentCoversAllNodesOrFails) {
  util::Rng rng(3);
  const auto req = path_request();
  const auto g = random_assignment(*sys, req, rng);
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(g->fully_assigned());
  EXPECT_TRUE(g->functions_match(*sys));
}

TEST_F(SearchFixture, RandomAssignmentFailsOnMissingFunction) {
  util::Rng rng(3);
  // Pick a function with no deployed providers.
  stream::FunctionId vacant = stream::kNoFunction;
  for (stream::FunctionId f = 0; f < sys->catalog().size(); ++f) {
    if (sys->components_providing(f).empty()) {
      vacant = f;
      break;
    }
  }
  ASSERT_NE(vacant, stream::kNoFunction);
  workload::Request req;
  req.graph.add_node(vacant, ResourceVector(1.0, 1.0));
  EXPECT_FALSE(random_assignment(*sys, req, rng).has_value());
}

TEST_F(SearchFixture, StaticAssignmentIsDeterministic) {
  const auto req = path_request();
  const auto a = static_assignment(*sys, req);
  const auto b = static_assignment(*sys, req);
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(*a == *b);
  // Lowest-id candidate per function.
  for (FnNodeIndex i = 0; i < req.graph.node_count(); ++i) {
    const auto& cands = sys->components_providing(req.graph.node(i).function);
    EXPECT_EQ(a->component_at(i), *std::min_element(cands.begin(), cands.end()));
  }
}

TEST_F(SearchFixture, ExhaustiveProbeCountFormula) {
  const auto req = path_request();  // 3 fns with 3 candidates each
  // 3 + 9 + 27 = 39.
  EXPECT_EQ(exhaustive_probe_count(*sys, req), 39u);
  const auto dag = dag_request();  // two paths of 3 fns, 3 cands each
  EXPECT_EQ(exhaustive_probe_count(*sys, dag), 78u);
}

TEST_F(SearchFixture, MergeRequiresAgreementOnSharedNodes) {
  const auto req = dag_request();
  const auto paths = req.graph.enumerate_paths();
  ASSERT_EQ(paths.size(), 2u);

  const auto f0 = sys->components_providing(chain[0]);
  const auto f1 = sys->components_providing(chain[1]);
  const auto f2 = sys->components_providing(chain[2]);

  PathAssignment p1{{f0[0], f1[0], f2[0]}, {}};
  PathAssignment p2_agree{{f0[0], f1[1], f2[0]}, {}};
  PathAssignment p2_conflict{{f0[1], f1[1], f2[0]}, {}};  // different split comp

  bool cap_hit = false;
  const auto merged = merge_path_assignments(req.graph, paths, {{p1}, {p2_agree, p2_conflict}},
                                             100, &cap_hit);
  ASSERT_EQ(merged.size(), 1u);  // only the agreeing pair merges
  EXPECT_FALSE(cap_hit);
  EXPECT_EQ(merged[0].component_at(0), f0[0]);
  EXPECT_EQ(merged[0].component_at(1), f1[0]);
  EXPECT_EQ(merged[0].component_at(2), f1[1]);
  EXPECT_EQ(merged[0].component_at(3), f2[0]);
}

// Differential optimality oracle: on small random instances the guided
// beam search at alpha = 1.0 (full fan-out, effectively uncapped beam) is
// EXACTLY as strong as exhaustive enumeration — it finds the same best phi,
// and it never produces a composition when the exhaustive search proves no
// qualified one exists. Instances stay small (<= 3 functions, <= 4
// candidates each) so the exhaustive oracle enumerates the full
// cross-product without caps.
TEST(SearchOracle, GuidedFullAlphaMatchesExhaustiveOnRandomInstances) {
  std::size_t solved = 0;
  std::size_t infeasible = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(1000 + seed * 7919);
    net::TopologyConfig tc;
    tc.node_count = 80 + static_cast<std::size_t>(rng.below(80));
    const auto ip = net::generate_power_law_topology(tc, rng);
    net::OverlayConfig oc;
    oc.member_count = 8 + static_cast<std::size_t>(rng.below(8));
    const net::OverlayMesh mesh(ip, oc, rng);
    stream::StreamSystem sys(mesh, stream::FunctionCatalog::generate(6, rng));
    for (stream::NodeId n = 0; n < sys.node_count(); ++n) {
      sys.set_node_capacity(
          n, ResourceVector(rng.uniform(60.0, 140.0), rng.uniform(600.0, 1400.0)));
    }
    const std::size_t chain_len = 1 + static_cast<std::size_t>(rng.below(3));
    const auto chain = acp::testing::compatible_chain(sys.catalog(), chain_len);
    for (stream::FunctionId f : chain) {
      const std::size_t cands = 1 + static_cast<std::size_t>(rng.below(4));
      for (std::size_t i = 0; i < cands; ++i) {
        sys.add_component(f, static_cast<stream::NodeId>(rng.below(sys.node_count())),
                          QoSVector::from_metrics(rng.uniform(5.0, 25.0), 0.001));
      }
    }
    // Background load on a few nodes so capacity feasibility is exercised.
    const std::size_t loaded = static_cast<std::size_t>(rng.below(5));
    for (std::size_t i = 0; i < loaded; ++i) {
      sys.commit_node_direct(500 + i, static_cast<stream::NodeId>(rng.below(sys.node_count())),
                             ResourceVector(rng.uniform(40.0, 90.0), rng.uniform(300.0, 800.0)),
                             0.0);
    }

    workload::Request req;
    req.id = seed;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      req.graph.add_node(chain[i],
                         ResourceVector(rng.uniform(5.0, 30.0), rng.uniform(50.0, 200.0)));
      if (i > 0) {
        req.graph.add_edge(static_cast<FnNodeIndex>(i - 1), static_cast<FnNodeIndex>(i),
                           rng.uniform(50.0, 150.0));
      }
    }
    // Roughly a third of the instances get a QoS bound tight enough that
    // usually no composition qualifies, exercising the nullopt branch.
    const bool tight = rng.below(3) == 0;
    req.qos_req = tight ? QoSVector::from_metrics(rng.uniform(0.5, 10.0), 0.0001)
                        : QoSVector::from_metrics(rng.uniform(500.0, 3000.0), 0.5);

    const auto best = exhaustive_best(sys, req, sys.true_state(), 0.0);
    const auto g = guided_search(sys, req, 1.0, sys.true_state(), sys.true_state(), 0.0, 0.05,
                                 nullptr, /*beam_cap=*/100000);
    if (!best.has_value()) {
      ++infeasible;
      EXPECT_FALSE(g.has_value())
          << "seed " << seed
          << ": guided found a composition where the exhaustive oracle proves none qualifies";
      continue;
    }
    ++solved;
    ASSERT_TRUE(g.has_value()) << "seed " << seed;
    const double best_phi = best->congestion_aggregation(sys, sys.true_state(), 0.0);
    const double g_phi = g->congestion_aggregation(sys, sys.true_state(), 0.0);
    EXPECT_NEAR(g_phi, best_phi, 1e-9) << "seed " << seed;
    EXPECT_TRUE(g->qualified(sys, sys.true_state(), req.qos_req, 0.0)) << "seed " << seed;
  }
  // The generator must hit both branches or the oracle is vacuous.
  EXPECT_GE(solved, 10u);
  EXPECT_GE(infeasible, 5u);
}

TEST_F(SearchFixture, MergeCapReported) {
  const auto req = path_request();
  const auto paths = req.graph.enumerate_paths();
  std::vector<PathAssignment> many;
  const auto f0 = sys->components_providing(chain[0]);
  const auto f1 = sys->components_providing(chain[1]);
  const auto f2 = sys->components_providing(chain[2]);
  for (auto a : f0) {
    for (auto b : f1) {
      for (auto c : f2) many.push_back(PathAssignment{{a, b, c}, {}});
    }
  }
  bool cap_hit = false;
  const auto merged = merge_path_assignments(req.graph, paths, {many}, 5, &cap_hit);
  EXPECT_EQ(merged.size(), 5u);
  EXPECT_TRUE(cap_hit);
}

}  // namespace
}  // namespace acp::core
