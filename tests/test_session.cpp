// Tests for SessionTable: probed-commit (confirmation of transients),
// direct commit with rollback, and teardown.
#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "stream/session.h"

namespace acp::stream {
namespace {

struct SessionFixture : ::testing::Test {
  void SetUp() override {
    util::Rng rng(42);
    net::TopologyConfig tc;
    tc.node_count = 150;
    ip = net::generate_power_law_topology(tc, rng);
    net::OverlayConfig oc;
    oc.member_count = 6;
    util::Rng orng(43);
    mesh = std::make_unique<net::OverlayMesh>(ip, oc, orng);
    util::Rng crng(44);
    sys = std::make_unique<StreamSystem>(*mesh, FunctionCatalog::generate(4, crng));
    for (NodeId n = 0; n < sys->node_count(); ++n) {
      sys->set_node_capacity(n, ResourceVector(100.0, 1000.0));
    }
    c0 = sys->add_component(0, 0, QoSVector::from_metrics(10, 0.0));
    c1 = sys->add_component(1, 1, QoSVector::from_metrics(10, 0.0));

    fg.add_node(0, ResourceVector(10.0, 100.0));
    fg.add_node(1, ResourceVector(20.0, 200.0));
    fg.add_edge(0, 1, 100.0);

    sessions = std::make_unique<SessionTable>(*sys);
  }

  ComponentGraph assigned() {
    ComponentGraph g(fg);
    g.assign(0, c0);
    g.assign(1, c1);
    return g;
  }

  net::Graph ip;
  std::unique_ptr<net::OverlayMesh> mesh;
  std::unique_ptr<StreamSystem> sys;
  std::unique_ptr<SessionTable> sessions;
  FunctionGraph fg;
  ComponentId c0{}, c1{};
};

TEST_F(SessionFixture, CommitProbedConfirmsTransients) {
  const RequestId req = 5;
  ASSERT_TRUE(sys->reserve_node_transient(req, node_tag(0), 0, fg.node(0).required, 0.0, 60.0));
  ASSERT_TRUE(sys->reserve_node_transient(req, node_tag(1), 1, fg.node(1).required, 0.0, 60.0));
  ASSERT_TRUE(sys->reserve_virtual_link_transient(req, link_tag(fg, 0), 0, 1, 100.0, 0.0, 60.0));

  const auto g = assigned();
  const SessionId sid = sessions->commit_probed(req, g, 1.0, 600.0);
  ASSERT_NE(sid, kNullSession);
  EXPECT_EQ(sessions->active_count(), 1u);

  // Resources are now committed (no expiry) and transients are gone.
  EXPECT_DOUBLE_EQ(sys->node_pool(0).available(1e9).cpu(), 90.0);
  EXPECT_DOUBLE_EQ(sys->node_pool(1).available(1e9).cpu(), 80.0);
  EXPECT_EQ(sys->node_pool(0).live_transient_count(1.0), 0u);

  const auto* rec = sessions->find(sid);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->request, req);
  EXPECT_DOUBLE_EQ(rec->planned_end_time, 600.0);
  EXPECT_EQ(rec->components.size(), 2u);

  EXPECT_TRUE(sessions->close(sid));
  EXPECT_DOUBLE_EQ(sys->node_pool(0).available(1e9).cpu(), 100.0);
  EXPECT_DOUBLE_EQ(sys->node_pool(1).available(1e9).cpu(), 100.0);
  EXPECT_EQ(sessions->active_count(), 0u);
}

TEST_F(SessionFixture, CommitProbedFailsWhenTransientExpired) {
  const RequestId req = 5;
  ASSERT_TRUE(sys->reserve_node_transient(req, node_tag(0), 0, fg.node(0).required, 0.0, 2.0));
  ASSERT_TRUE(sys->reserve_node_transient(req, node_tag(1), 1, fg.node(1).required, 0.0, 60.0));
  ASSERT_TRUE(sys->reserve_virtual_link_transient(req, link_tag(fg, 0), 0, 1, 100.0, 0.0, 60.0));

  // Node 0's reservation expires before the commit at t=5.
  const SessionId sid = sessions->commit_probed(req, assigned(), 5.0, 600.0);
  EXPECT_EQ(sid, kNullSession);
  // Everything rolled back: full capacity, no transients anywhere.
  EXPECT_DOUBLE_EQ(sys->node_pool(0).available(1e9).cpu(), 100.0);
  EXPECT_DOUBLE_EQ(sys->node_pool(1).available(1e9).cpu(), 100.0);
  EXPECT_EQ(sys->node_pool(1).live_transient_count(5.0), 0u);
  EXPECT_EQ(sessions->active_count(), 0u);
}

TEST_F(SessionFixture, CommitProbedDropsLosingReservations) {
  const RequestId req = 5;
  // Winner's reservations.
  ASSERT_TRUE(sys->reserve_node_transient(req, node_tag(0), 0, fg.node(0).required, 0.0, 60.0));
  ASSERT_TRUE(sys->reserve_node_transient(req, node_tag(1), 1, fg.node(1).required, 0.0, 60.0));
  ASSERT_TRUE(sys->reserve_virtual_link_transient(req, link_tag(fg, 0), 0, 1, 100.0, 0.0, 60.0));
  // A losing candidate's reservation on another node (same fn tag).
  ASSERT_TRUE(sys->reserve_node_transient(req, node_tag(1), 3, fg.node(1).required, 0.0, 60.0));

  const SessionId sid = sessions->commit_probed(req, assigned(), 1.0, 600.0);
  ASSERT_NE(sid, kNullSession);
  EXPECT_EQ(sys->node_pool(3).live_transient_count(1.0), 0u);
  EXPECT_DOUBLE_EQ(sys->node_pool(3).available(1.0).cpu(), 100.0);
}

TEST_F(SessionFixture, CommitDirectAllOrNothing) {
  // Make node 1 too small for fn 1's demand.
  ASSERT_TRUE(sys->commit_node_direct(99, 1, ResourceVector(95.0, 0.0), 0.0));
  const SessionId sid = sessions->commit_direct(7, assigned(), 0.0, 600.0);
  EXPECT_EQ(sid, kNullSession);
  // Node 0 must not retain a partial allocation.
  EXPECT_DOUBLE_EQ(sys->node_pool(0).available(0.0).cpu(), 100.0);
}

TEST_F(SessionFixture, CommitDirectSucceedsAndCloses) {
  const SessionId sid = sessions->commit_direct(7, assigned(), 0.0, 600.0);
  ASSERT_NE(sid, kNullSession);
  EXPECT_DOUBLE_EQ(sys->node_pool(0).available(0.0).cpu(), 90.0);
  EXPECT_TRUE(sessions->close(sid));
  EXPECT_FALSE(sessions->close(sid));  // double close is safe
  EXPECT_DOUBLE_EQ(sys->node_pool(0).available(0.0).cpu(), 100.0);
}

TEST_F(SessionFixture, CoLocatedCommitAggregatesDemand) {
  // Put both functions on node 0.
  const auto c1_n0 = sys->add_component(1, 0, QoSVector::from_metrics(10, 0.0));
  ComponentGraph g(fg);
  g.assign(0, c0);
  g.assign(1, c1_n0);
  const SessionId sid = sessions->commit_direct(8, g, 0.0, 600.0);
  ASSERT_NE(sid, kNullSession);
  EXPECT_DOUBLE_EQ(sys->node_pool(0).available(0.0).cpu(), 70.0);  // 10 + 20
  sessions->close(sid);
}

TEST_F(SessionFixture, SessionIdsAreUniqueAndNonNull) {
  const auto a = sessions->commit_direct(1, assigned(), 0.0, 10.0);
  const auto b = sessions->commit_direct(2, assigned(), 0.0, 10.0);
  EXPECT_NE(a, kNullSession);
  EXPECT_NE(b, kNullSession);
  EXPECT_NE(a, b);
}

TEST_F(SessionFixture, FindUnknownSessionReturnsNull) {
  EXPECT_EQ(sessions->find(12345), nullptr);
}

}  // namespace
}  // namespace acp::stream
