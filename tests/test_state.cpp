// Tests for hierarchical state management: threshold-triggered coarse
// global state, aggregation publish, local state staleness.
#include <gtest/gtest.h>

#include <memory>

#include "net/topology.h"
#include "state/global_state.h"
#include "state/local_state.h"

namespace acp::state {
namespace {

struct StateFixture : ::testing::Test {
  void SetUp() override {
    util::Rng rng(42);
    net::TopologyConfig tc;
    tc.node_count = 150;
    ip = net::generate_power_law_topology(tc, rng);
    net::OverlayConfig oc;
    oc.member_count = 10;
    util::Rng orng(43);
    mesh = std::make_unique<net::OverlayMesh>(ip, oc, orng);
    util::Rng crng(44);
    sys = std::make_unique<stream::StreamSystem>(*mesh,
                                                 stream::FunctionCatalog::generate(5, crng));
    for (stream::NodeId n = 0; n < sys->node_count(); ++n) {
      sys->set_node_capacity(n, stream::ResourceVector(100.0, 1000.0));
    }
    comp = sys->add_component(0, 0, stream::QoSVector::from_metrics(5.0, 0.001));
  }

  net::Graph ip;
  std::unique_ptr<net::OverlayMesh> mesh;
  std::unique_ptr<stream::StreamSystem> sys;
  stream::ComponentId comp{};
  sim::Engine engine;
  sim::CounterSet counters;
};

TEST_F(StateFixture, StartSeedsFromGroundTruth) {
  GlobalStateManager mgr(*sys, engine, counters);
  mgr.start();
  EXPECT_DOUBLE_EQ(mgr.view().node_available(3, 0.0).cpu(), 100.0);
}

TEST_F(StateFixture, SmallChangesAreFilteredOut) {
  GlobalStateConfig cfg;
  cfg.threshold_fraction = 0.10;
  GlobalStateManager mgr(*sys, engine, counters, cfg);
  mgr.start();
  // 5% change: below the 10% threshold — no update message, stale view.
  ASSERT_TRUE(sys->commit_node_direct(1, 2, stream::ResourceVector(5.0, 50.0), 0.0));
  mgr.run_check_sweep();
  EXPECT_EQ(counters.total(sim::counter::kGlobalStateUpdate), 0u);
  EXPECT_DOUBLE_EQ(mgr.view().node_available(2, 0.0).cpu(), 100.0);  // stale
}

TEST_F(StateFixture, SignificantChangesTriggerUpdate) {
  GlobalStateConfig cfg;
  cfg.threshold_fraction = 0.10;
  GlobalStateManager mgr(*sys, engine, counters, cfg);
  mgr.start();
  ASSERT_TRUE(sys->commit_node_direct(1, 2, stream::ResourceVector(20.0, 50.0), 0.0));
  mgr.run_check_sweep();
  EXPECT_EQ(counters.total(sim::counter::kGlobalStateUpdate), 1u);
  EXPECT_DOUBLE_EQ(mgr.view().node_available(2, 0.0).cpu(), 80.0);  // fresh
}

TEST_F(StateFixture, LinkUpdatesFlowThroughAggregationPublish) {
  GlobalStateConfig cfg;
  cfg.threshold_fraction = 0.10;
  GlobalStateManager mgr(*sys, engine, counters, cfg);
  mgr.start();
  const net::OverlayLinkIndex l = 0;
  const double cap = sys->link_pool(l).capacity();
  ASSERT_TRUE(sys->link_pool(l).commit_direct(1, cap * 0.5, 0.0));

  mgr.run_check_sweep();
  // The owner reported to the aggregation node…
  EXPECT_EQ(counters.total(sim::counter::kAggregationUpdate), 1u);
  // …but the published global copy is only refreshed at the next publish.
  EXPECT_DOUBLE_EQ(mgr.view().link_available_kbps(l, 0.0), cap);
  mgr.run_publish();
  EXPECT_DOUBLE_EQ(mgr.view().link_available_kbps(l, 0.0), cap * 0.5);
}

TEST_F(StateFixture, AggregationRoleRotates) {
  GlobalStateManager mgr(*sys, engine, counters);
  mgr.start();
  const auto first = mgr.aggregation_node();
  mgr.run_publish();
  EXPECT_NE(mgr.aggregation_node(), first);
}

TEST_F(StateFixture, PeriodicTicksRunThroughEngine) {
  GlobalStateConfig cfg;
  cfg.check_interval_s = 10.0;
  cfg.aggregation_publish_interval_s = 60.0;
  GlobalStateManager mgr(*sys, engine, counters, cfg);
  mgr.start();
  ASSERT_TRUE(sys->commit_node_direct(1, 4, stream::ResourceVector(50.0, 500.0), 0.0));
  engine.run_until(10.5);  // one check tick
  EXPECT_DOUBLE_EQ(mgr.view().node_available(4, engine.now()).cpu(), 50.0);
}

TEST_F(StateFixture, StartTwiceThrows) {
  GlobalStateManager mgr(*sys, engine, counters);
  mgr.start();
  EXPECT_THROW(mgr.start(), acp::PreconditionError);
}

TEST_F(StateFixture, ComponentQosIsServedFromCoarseView) {
  GlobalStateManager mgr(*sys, engine, counters);
  mgr.start();
  EXPECT_NEAR(mgr.view().component_qos(comp, 0.0).delay_ms(), 5.0, 1e-12);
}

// ---- Local state -------------------------------------------------------------

TEST_F(StateFixture, LocalViewSelfIsAlwaysExact) {
  LocalStateManager mgr(*sys, engine, counters);
  mgr.start();
  ASSERT_TRUE(sys->commit_node_direct(1, 3, stream::ResourceVector(40.0, 100.0), 0.0));
  // No refresh has run since the commit, but node 3 knows itself.
  EXPECT_DOUBLE_EQ(mgr.view_from(3).node_available(3, 0.0).cpu(), 60.0);
  // A remote vantage still sees the stale snapshot.
  EXPECT_DOUBLE_EQ(mgr.view_from(0).node_available(3, 0.0).cpu(), 100.0);
}

TEST_F(StateFixture, LocalRefreshUpdatesNeighborhood) {
  LocalStateManager mgr(*sys, engine, counters);
  mgr.start();
  ASSERT_TRUE(sys->commit_node_direct(1, 3, stream::ResourceVector(40.0, 100.0), 0.0));
  mgr.run_refresh();
  EXPECT_DOUBLE_EQ(mgr.view_from(0).node_available(3, 0.0).cpu(), 60.0);
}

TEST_F(StateFixture, AdjacentLinksAreExactFromEitherEnd) {
  LocalStateManager mgr(*sys, engine, counters);
  mgr.start();
  const net::OverlayLinkIndex l = 0;
  const auto& link = mesh->link(l);
  const double cap = sys->link_pool(l).capacity();
  ASSERT_TRUE(sys->link_pool(l).commit_direct(1, cap * 0.3, 0.0));
  EXPECT_DOUBLE_EQ(mgr.view_from(link.a).link_available_kbps(l, 0.0), cap * 0.7);
  EXPECT_DOUBLE_EQ(mgr.view_from(link.b).link_available_kbps(l, 0.0), cap * 0.7);
}

TEST_F(StateFixture, RefreshMessagesCountedOnlyWhenEnabled) {
  LocalStateConfig cfg;
  cfg.count_messages = true;
  LocalStateManager mgr(*sys, engine, counters, cfg);
  mgr.start();
  EXPECT_GT(counters.total(sim::counter::kLocalRefresh), 0u);
}

}  // namespace
}  // namespace acp::state
