#include "util/stats.h"

#include <gtest/gtest.h>

namespace acp::util {
namespace {

TEST(RunningStat, EmptyDefaults) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3;
    a.add(x);
    combined.add(x);
  }
  for (int i = 0; i < 30; ++i) {
    const double x = i * -1.3 + 10;
    b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentiles, MedianAndExtremes) {
  Percentiles p;
  for (int i = 1; i <= 101; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.median(), 51.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 101.0);
}

TEST(Percentiles, Interpolates) {
  Percentiles p;
  p.add(10.0);
  p.add(20.0);
  EXPECT_DOUBLE_EQ(p.percentile(50), 15.0);
}

TEST(Percentiles, RequiresData) {
  Percentiles p;
  EXPECT_THROW(p.percentile(50), PreconditionError);
}

TEST(Percentiles, SingleValue) {
  Percentiles p;
  p.add(42.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(p.percentile(99), 42.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bucket 0
  h.add(9.9);   // bucket 4
  h.add(-3.0);  // clamps to 0
  h.add(42.0);  // clamps to 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count_in(0), 2u);
  EXPECT_EQ(h.count_in(4), 2u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(TimeSeries, WindowMean) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(1.0, 3.0);
  ts.add(2.0, 5.0);
  EXPECT_DOUBLE_EQ(ts.window_mean(0.0, 2.0), 2.0);  // [0, 2) → 1, 3
  EXPECT_DOUBLE_EQ(ts.window_mean(5.0, 9.0), 0.0);  // empty window
}

TEST(TimeSeries, ValueAtTime) {
  TimeSeries ts;
  ts.add(1.0, 10.0);
  ts.add(3.0, 30.0);
  EXPECT_DOUBLE_EQ(ts.value_at_time(0.5, -1.0), -1.0);  // before first
  EXPECT_DOUBLE_EQ(ts.value_at_time(1.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at_time(2.9), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at_time(99.0), 30.0);
}

TEST(TimeSeries, RejectsOutOfOrder) {
  TimeSeries ts;
  ts.add(2.0, 1.0);
  EXPECT_THROW(ts.add(1.0, 1.0), PreconditionError);
}

TEST(SuccessRateTracker, OverallRate) {
  SuccessRateTracker t;
  EXPECT_DOUBLE_EQ(t.rate(), 1.0);  // vacuous success
  t.record(true);
  t.record(true);
  t.record(false);
  t.record(true);
  EXPECT_DOUBLE_EQ(t.rate(), 0.75);
  EXPECT_EQ(t.requests(), 4u);
  EXPECT_EQ(t.successes(), 3u);
}

TEST(SuccessRateTracker, WindowedSampling) {
  SuccessRateTracker t;
  t.record(true);
  t.record(false);
  EXPECT_DOUBLE_EQ(t.sample_and_reset(), 0.5);
  t.record(true);
  t.record(true);
  t.record(true);
  t.record(false);
  EXPECT_DOUBLE_EQ(t.sample_and_reset(), 0.75);
  // Empty window reads as 100% (paper plots start at 100).
  EXPECT_DOUBLE_EQ(t.sample_and_reset(), 1.0);
  // Overall rate still covers everything.
  EXPECT_DOUBLE_EQ(t.rate(), 4.0 / 6.0);
}

}  // namespace
}  // namespace acp::util
