// Tests for StreamSystem: population, admission, virtual-link reservations.
#include <gtest/gtest.h>

#include "net/topology.h"
#include "stream/system.h"

namespace acp::stream {
namespace {

struct SystemFixture : ::testing::Test {
  void SetUp() override {
    util::Rng rng(42);
    net::TopologyConfig tc;
    tc.node_count = 200;
    ip = net::generate_power_law_topology(tc, rng);
    net::OverlayConfig oc;
    oc.member_count = 12;
    util::Rng orng(43);
    mesh = std::make_unique<net::OverlayMesh>(ip, oc, orng);
    util::Rng crng(44);
    sys = std::make_unique<StreamSystem>(*mesh, FunctionCatalog::generate(10, crng));
    for (NodeId n = 0; n < sys->node_count(); ++n) {
      sys->set_node_capacity(n, ResourceVector(100.0, 1000.0));
    }
  }

  net::Graph ip;
  std::unique_ptr<net::OverlayMesh> mesh;
  std::unique_ptr<StreamSystem> sys;
};

TEST_F(SystemFixture, AddComponentIndexes) {
  const auto c0 = sys->add_component(3, 5, QoSVector::from_metrics(10, 0.01));
  const auto c1 = sys->add_component(3, 7, QoSVector::from_metrics(12, 0.0));
  const auto c2 = sys->add_component(4, 5, QoSVector::from_metrics(8, 0.0));
  EXPECT_EQ(sys->component_count(), 3u);
  EXPECT_EQ(sys->components_providing(3), (std::vector<ComponentId>{c0, c1}));
  EXPECT_EQ(sys->components_providing(4), (std::vector<ComponentId>{c2}));
  EXPECT_TRUE(sys->components_providing(9).empty());
  EXPECT_EQ(sys->components_on(5), (std::vector<ComponentId>{c0, c2}));
  EXPECT_EQ(sys->component(c1).node, 7u);
  EXPECT_EQ(sys->component(c1).function, 3u);
}

TEST_F(SystemFixture, AddComponentValidatesInputs) {
  EXPECT_THROW(sys->add_component(99, 0, {}), acp::PreconditionError);
  EXPECT_THROW(sys->add_component(0, 999, {}), acp::PreconditionError);
}

TEST_F(SystemFixture, CapacityCannotChangeUnderAllocations) {
  ASSERT_TRUE(sys->commit_node_direct(1, 0, ResourceVector(1, 1), 0.0));
  EXPECT_THROW(sys->set_node_capacity(0, ResourceVector(5, 5)), acp::PreconditionError);
}

TEST_F(SystemFixture, TrueStateReflectsPools) {
  const auto& view = sys->true_state();
  EXPECT_DOUBLE_EQ(view.node_available(3, 0.0).cpu(), 100.0);
  ASSERT_TRUE(sys->commit_node_direct(9, 3, ResourceVector(40, 100), 0.0));
  EXPECT_DOUBLE_EQ(view.node_available(3, 0.0).cpu(), 60.0);
  sys->release_session(9);
  EXPECT_DOUBLE_EQ(view.node_available(3, 0.0).cpu(), 100.0);
}

TEST_F(SystemFixture, VirtualLinkReservationIsAllOrNothing) {
  // Pick two distinct nodes with a multi-link path if possible.
  const NodeId a = 0, b = static_cast<NodeId>(sys->node_count() - 1);
  const auto& path = mesh->virtual_link_path(a, b);
  ASSERT_FALSE(path.empty());

  // Saturate the LAST link on the path so reservation must roll back.
  const auto last = path.back();
  const double cap = sys->link_pool(last).capacity();
  ASSERT_TRUE(sys->link_pool(last).commit_direct(42, cap, 0.0));

  EXPECT_FALSE(sys->reserve_virtual_link_transient(1, 0, a, b, 100.0, 0.0, 10.0));
  // Roll back must leave earlier links untouched.
  for (auto l : path) {
    if (l != last) {
      EXPECT_EQ(sys->link_pool(l).live_transient_count(0.0), 0u) << "link " << l;
    }
  }
}

TEST_F(SystemFixture, VirtualLinkReservationSucceedsAndConfirms) {
  const NodeId a = 0, b = 5;
  ASSERT_TRUE(sys->reserve_virtual_link_transient(1, 7, a, b, 100.0, 0.0, 10.0));
  EXPECT_TRUE(sys->confirm_virtual_link(1, 7, a, b, /*session=*/3, 0.0));
  for (auto l : mesh->virtual_link_path(a, b)) {
    EXPECT_DOUBLE_EQ(sys->link_pool(l).available(99.0),
                     sys->link_pool(l).capacity() - 100.0);
  }
  sys->release_session(3);
  for (auto l : mesh->virtual_link_path(a, b)) {
    EXPECT_DOUBLE_EQ(sys->link_pool(l).available(99.0), sys->link_pool(l).capacity());
  }
}

TEST_F(SystemFixture, CoLocatedVirtualLinkIsFree) {
  EXPECT_TRUE(sys->reserve_virtual_link_transient(1, 0, 4, 4, 1e12, 0.0, 10.0));
  EXPECT_TRUE(sys->confirm_virtual_link(1, 0, 4, 4, 2, 0.0));
}

TEST_F(SystemFixture, CancelRequestClearsEverywhere) {
  ASSERT_TRUE(sys->reserve_node_transient(5, 0, 2, ResourceVector(10, 10), 0.0, 60.0));
  ASSERT_TRUE(sys->reserve_virtual_link_transient(5, 1, 0, 3, 50.0, 0.0, 60.0));
  sys->cancel_request(5);
  EXPECT_EQ(sys->node_pool(2).live_transient_count(0.0), 0u);
  for (auto l : mesh->virtual_link_path(0, 3)) {
    EXPECT_EQ(sys->link_pool(l).live_transient_count(0.0), 0u);
  }
}

TEST_F(SystemFixture, RequestScopedViewExcludesOwnTransients) {
  ASSERT_TRUE(sys->reserve_node_transient(5, 0, 2, ResourceVector(30, 300), 0.0, 60.0));
  ASSERT_TRUE(sys->reserve_node_transient(6, 0, 2, ResourceVector(10, 100), 0.0, 60.0));
  const StreamSystem::RequestScopedView mine(*sys, 5);
  // Request 5 sees only request 6's hold.
  EXPECT_DOUBLE_EQ(mine.node_available(2, 1.0).cpu(), 90.0);
  // The plain true view sees both.
  EXPECT_DOUBLE_EQ(sys->true_state().node_available(2, 1.0).cpu(), 60.0);
}

TEST_F(SystemFixture, DirectVirtualLinkCommitRollsBackOnFailure) {
  const NodeId a = 1, b = static_cast<NodeId>(sys->node_count() - 2);
  const auto& path = mesh->virtual_link_path(a, b);
  ASSERT_FALSE(path.empty());
  const auto last = path.back();
  const double cap = sys->link_pool(last).capacity();
  ASSERT_TRUE(sys->link_pool(last).commit_direct(42, cap, 0.0));

  EXPECT_FALSE(sys->commit_virtual_link_direct(7, a, b, 100.0, 0.0));
  for (auto l : path) {
    if (l != last) {
      EXPECT_DOUBLE_EQ(sys->link_pool(l).available(0.0), sys->link_pool(l).capacity())
          << "link " << l;
    }
  }
}

}  // namespace
}  // namespace acp::stream
