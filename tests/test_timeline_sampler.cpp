// Timeline sampler edge cases (obs/timeline.h): a sample interval longer
// than the run, runs with no simulation events at all, and a writer sink
// attached/detached while the sampler is mid-run.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/timeline.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace acp::obs {
namespace {

std::vector<ParsedTraceEvent> rows_of(const std::string& jsonl, const std::string& type) {
  std::vector<ParsedTraceEvent> out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ParsedTraceEvent ev = parse_trace_line(line);
    if (ev.str("type") == type) out.push_back(std::move(ev));
  }
  return out;
}

struct SamplerHarness {
  sim::Engine engine;
  TimelineWriter writer;
  std::ostringstream buf;
  TimelineConfig config;
  std::unique_ptr<TimelineSampler> sampler;

  explicit SamplerHarness(double interval_s) {
    writer.set_stream(&buf);
    writer.header("edge", "sha", 1, true);
    writer.begin_run("ACP");
    config.sample_interval_s = interval_s;
    sampler = std::make_unique<TimelineSampler>(
        writer, config,
        [this](double delay_s, std::function<void()> fn) {
          engine.schedule_after(delay_s, std::move(fn));
        },
        [this] {
          TimelineSample s;
          s.events = engine.events_fired();
          s.queue_depth = engine.pending();
          return s;
        });
  }
};

TEST(TimelineSamplerEdge, IntervalLongerThanRunTakesNoSamples) {
  SamplerHarness h(1000.0);
  h.sampler->start(10.0);  // first tick would land at t=1000 > stop
  h.engine.run_until(10.0);
  EXPECT_EQ(h.sampler->samples_taken(), 0u);
  EXPECT_TRUE(rows_of(h.buf.str(), "sample").empty());
  // The stream is still a valid artifact: header + run_start survive.
  EXPECT_EQ(rows_of(h.buf.str(), "header").size(), 1u);
  EXPECT_EQ(rows_of(h.buf.str(), "run_start").size(), 1u);
}

TEST(TimelineSamplerEdge, LastTickExactlyAtStopStillFires) {
  SamplerHarness h(5.0);
  h.sampler->start(10.0);  // ticks at t=5 and t=10 (== stop_at, inclusive)
  h.engine.run_until(20.0);
  EXPECT_EQ(h.sampler->samples_taken(), 2u);
}

TEST(TimelineSamplerEdge, ZeroEventRunSamplesZeroRates) {
  // No simulation activity besides the sampler's own ticks: every sample
  // must parse, count only sampler events, and report no requests.
  SamplerHarness h(1.0);
  h.sampler->start(5.0);
  h.engine.run_until(5.0);
  EXPECT_EQ(h.sampler->samples_taken(), 5u);
  const auto samples = rows_of(h.buf.str(), "sample");
  ASSERT_EQ(samples.size(), 5u);
  std::uint64_t prev_events = 0;
  for (const auto& s : samples) {
    EXPECT_EQ(s.num("requests"), 0.0);
    EXPECT_EQ(s.num("active_sessions"), 0.0);
    const auto events = static_cast<std::uint64_t>(s.num("events"));
    EXPECT_GE(events, prev_events);  // cumulative, sampler ticks only
    EXPECT_LE(events - prev_events, 1u);
    prev_events = events;
  }
}

TEST(TimelineSamplerEdge, DetachAndReattachMidRun) {
  SamplerHarness h(1.0);
  std::ostringstream second;
  // Detach the sink mid-run (ticks keep firing silently), then attach a
  // fresh one: rows resume without a restart of the sampler.
  h.engine.schedule_after(2.5, [&h] { h.writer.set_stream(nullptr); });
  h.engine.schedule_after(4.5, [&h, &second] { h.writer.set_stream(&second); });
  h.sampler->start(6.0);
  h.engine.run_until(6.0);

  EXPECT_EQ(h.sampler->samples_taken(), 6u);  // every tick ran
  EXPECT_EQ(rows_of(h.buf.str(), "sample").size(), 2u);   // t=1, t=2
  const auto resumed = rows_of(second.str(), "sample");
  ASSERT_EQ(resumed.size(), 2u);  // t=5, t=6
  EXPECT_DOUBLE_EQ(resumed[0].num("t"), 5.0);
  EXPECT_DOUBLE_EQ(resumed[1].num("t"), 6.0);
}

}  // namespace
}  // namespace acp::obs
