// Torus XL fabric (bench/fig7_xl substrate): arithmetic link ids, the
// deterministic Manhattan staircase walk, identity deputy mapping, and the
// for_each_virtual_link fast path — checked against first principles and
// against the materializing virtual_link_path on both fabric kinds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "exp/system_builder.h"
#include "net/overlay.h"
#include "net/topology.h"
#include "util/rng.h"

namespace {

using acp::net::OverlayLinkIndex;
using acp::net::OverlayMesh;
using acp::net::OverlayNodeIndex;

constexpr std::uint32_t kRows = 7;
constexpr std::uint32_t kCols = 9;

OverlayMesh make_torus() { return OverlayMesh::torus(kRows, kCols, 2.0, 1.0e6); }

std::uint32_t manhattan(OverlayNodeIndex a, OverlayNodeIndex b) {
  const std::uint32_t dr =
      (b / kCols + kRows - a / kCols) % kRows;
  const std::uint32_t dc = (b % kCols + kCols - a % kCols) % kCols;
  return std::min(dr, kRows - dr) + std::min(dc, kCols - dc);
}

TEST(Torus, GeometryAndLinkIds) {
  const OverlayMesh mesh = make_torus();
  EXPECT_TRUE(mesh.is_torus());
  EXPECT_EQ(mesh.node_count(), static_cast<std::size_t>(kRows) * kCols);
  EXPECT_EQ(mesh.link_count(), 2u * kRows * kCols);

  // Node i owns link 2i (right neighbor) and 2i+1 (down neighbor).
  for (OverlayNodeIndex n = 0; n < mesh.node_count(); ++n) {
    const std::uint32_t r = n / kCols, c = n % kCols;
    const auto& right = mesh.link(2 * n);
    EXPECT_EQ(right.a, n);
    EXPECT_EQ(right.b, r * kCols + (c + 1) % kCols);
    const auto& down = mesh.link(2 * n + 1);
    EXPECT_EQ(down.a, n);
    EXPECT_EQ(down.b, ((r + 1) % kRows) * kCols + c);
    EXPECT_EQ(right.delay_ms, 2.0);
    EXPECT_EQ(right.loss_rate, 0.0);
    // Degree 4: own right/down plus the left/up neighbors' links.
    EXPECT_EQ(mesh.links_of(n).size(), 4u);
  }
  // Identity member mapping.
  for (OverlayNodeIndex n = 0; n < mesh.node_count(); ++n) {
    EXPECT_EQ(mesh.ip_host(n), n);
    EXPECT_EQ(mesh.closest_member(n), n);
  }
}

TEST(Torus, StaircaseWalkIsAValidShortestPath) {
  const OverlayMesh mesh = make_torus();
  for (OverlayNodeIndex a = 0; a < mesh.node_count(); ++a) {
    for (OverlayNodeIndex b = 0; b < mesh.node_count(); ++b) {
      const auto& path = mesh.virtual_link_path(a, b);
      ASSERT_EQ(path.size(), manhattan(a, b)) << a << "->" << b;
      ASSERT_EQ(mesh.virtual_link_hops(a, b), path.size());
      // The links chain a → ... → b through shared endpoints.
      OverlayNodeIndex here = a;
      for (const OverlayLinkIndex l : path) {
        const auto& link = mesh.link(l);
        ASSERT_TRUE(link.a == here || link.b == here) << a << "->" << b;
        here = link.other(here);
      }
      ASSERT_EQ(here, b);
      // Delay = hops × uniform link delay, and symmetric.
      ASSERT_DOUBLE_EQ(mesh.virtual_link_delay(a, b), 2.0 * static_cast<double>(path.size()));
      ASSERT_DOUBLE_EQ(mesh.virtual_link_delay(a, b), mesh.virtual_link_delay(b, a));
    }
  }
}

TEST(Torus, ForEachMatchesMaterializedPath) {
  const OverlayMesh mesh = make_torus();
  acp::util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<OverlayNodeIndex>(rng.below(mesh.node_count()));
    const auto b = static_cast<OverlayNodeIndex>(rng.below(mesh.node_count()));
    std::vector<OverlayLinkIndex> walked;
    mesh.for_each_virtual_link(a, b, [&](OverlayLinkIndex l) { walked.push_back(l); });
    EXPECT_EQ(walked, mesh.virtual_link_path(a, b));
  }
}

TEST(Torus, WalkIsDeterministicWithPositiveTieBreak) {
  // kCols = 9 with a column distance of 4 vs 5: shorter wrap wins; an exact
  // tie (impossible on odd sizes) is covered on an even-size torus below.
  const OverlayMesh mesh = make_torus();
  const auto& p1 = mesh.virtual_link_path(0, 4);  // 4 right vs 5 left: right
  ASSERT_EQ(p1.size(), 4u);
  EXPECT_EQ(p1[0], 0u);  // link_right(0,0) = 2*0

  const OverlayMesh even = OverlayMesh::torus(4, 6, 1.0, 1.0e6);
  // Row distance 2 both ways on 4 rows: tie → positive (downward) walk.
  const auto& p2 = even.virtual_link_path(0, 2 * 6);
  ASSERT_EQ(p2.size(), 2u);
  EXPECT_EQ(p2[0], 1u);                // link_down(0,0) = 2*0+1
  EXPECT_EQ(p2[1], 2u * 6u + 1u);      // link_down(1,0)
}

TEST(Torus, ClosestMemberWhereScansByManhattanDelay) {
  const OverlayMesh mesh = make_torus();
  // Only nodes in row 3 eligible: the winner is the row-3 node in the same
  // column (column distance 0).
  const auto eligible = [](OverlayNodeIndex o) { return o / kCols == 3; };
  EXPECT_EQ(mesh.closest_member_where(5, eligible), 3u * kCols + 5u);
  // Nothing eligible: falls back to the identity member.
  const auto nothing = [](OverlayNodeIndex) { return false; };
  EXPECT_EQ(mesh.closest_member_where(17, nothing), 17u);
}

TEST(Torus, BuildFabricUsesTorusAndSkipsInet) {
  acp::exp::SystemConfig cfg;
  cfg.torus_rows = 8;
  cfg.torus_cols = 10;
  const auto fabric = acp::exp::build_fabric(cfg);
  ASSERT_NE(fabric.mesh, nullptr);
  EXPECT_TRUE(fabric.mesh->is_torus());
  EXPECT_EQ(fabric.mesh->node_count(), 80u);
  EXPECT_EQ(fabric.ip.node_count(), 80u);  // identity-mapped hosts
  // Deployment over the torus fabric works end to end.
  const auto dep = acp::exp::build_deployment(fabric, cfg);
  EXPECT_EQ(dep.sys->node_count(), 80u);
}

TEST(Torus, FiftyThousandNodeWorldBuildsInstantly) {
  // The entire point of the torus fabric: O(N) construction. 51200 nodes /
  // 102400 links build in well under a second; spot-check far corners.
  const OverlayMesh mesh = OverlayMesh::torus(200, 256, 1.0, 1.0e6);
  EXPECT_EQ(mesh.node_count(), 51200u);
  EXPECT_EQ(mesh.link_count(), 102400u);
  const OverlayNodeIndex antipode = 100u * 256u + 128u;  // (100, 128) from (0, 0)
  EXPECT_EQ(mesh.virtual_link_hops(0, antipode), 100u + 128u);
  EXPECT_DOUBLE_EQ(mesh.virtual_link_delay(0, antipode), 228.0);
  EXPECT_EQ(mesh.virtual_link_hops(0, 51199u), 2u);  // corner wraps both axes
}

TEST(NormalMesh, ForEachMatchesMaterializedPath) {
  // The fast path must be a pure refactor on paper-scale fabrics too.
  acp::net::TopologyConfig tcfg;
  tcfg.node_count = 200;
  acp::util::Rng rng(11);
  const auto ip = acp::net::generate_power_law_topology(tcfg, rng);
  acp::net::OverlayConfig ocfg;
  ocfg.member_count = 40;
  const OverlayMesh mesh(ip, ocfg, rng);
  EXPECT_FALSE(mesh.is_torus());
  for (OverlayNodeIndex a = 0; a < mesh.node_count(); ++a) {
    for (OverlayNodeIndex b = 0; b < mesh.node_count(); ++b) {
      std::vector<OverlayLinkIndex> walked;
      mesh.for_each_virtual_link(a, b, [&](OverlayLinkIndex l) { walked.push_back(l); });
      ASSERT_EQ(walked, mesh.virtual_link_path(a, b));
    }
  }
}

}  // namespace
