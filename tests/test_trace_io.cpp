// Tests for request-trace serialization round trips.
#include <gtest/gtest.h>

#include <sstream>

#include "workload/generator.h"
#include "workload/trace_io.h"

namespace acp::workload {
namespace {

std::vector<Request> sample_trace(double strict_policy_fraction = 0.0) {
  util::Rng crng(42);
  const auto catalog = stream::FunctionCatalog::generate(80, crng);
  util::Rng trng(43);
  const auto templates = TemplateLibrary::generate(catalog, {}, trng);
  WorkloadConfig cfg;
  cfg.strict_policy_fraction = strict_policy_fraction;
  util::Rng rng(7);
  RequestGenerator gen(catalog, templates, cfg, {{0.0, 60.0}}, 500, rng);
  return gen.generate_trace(300.0);
}

void expect_equal(const Request& a, const Request& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_DOUBLE_EQ(a.arrival_time, b.arrival_time);
  EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.client_ip, b.client_ip);
  EXPECT_EQ(a.template_index, b.template_index);
  EXPECT_NEAR(a.qos_req.delay_ms(), b.qos_req.delay_ms(), 1e-9);
  EXPECT_NEAR(a.qos_req.loss_probability(), b.qos_req.loss_probability(), 1e-12);
  EXPECT_EQ(a.policy.min_security(), b.policy.min_security());
  for (std::size_t i = 0; i < stream::kLicenseClassCount; ++i) {
    const auto c = static_cast<stream::LicenseClass>(i);
    EXPECT_EQ(a.policy.license_allowed(c), b.policy.license_allowed(c));
  }
  ASSERT_EQ(a.graph.node_count(), b.graph.node_count());
  for (stream::FnNodeIndex n = 0; n < a.graph.node_count(); ++n) {
    EXPECT_EQ(a.graph.node(n).function, b.graph.node(n).function);
    EXPECT_DOUBLE_EQ(a.graph.node(n).required.cpu(), b.graph.node(n).required.cpu());
    EXPECT_DOUBLE_EQ(a.graph.node(n).required.memory_mb(), b.graph.node(n).required.memory_mb());
  }
  ASSERT_EQ(a.graph.edge_count(), b.graph.edge_count());
  for (stream::FnEdgeIndex e = 0; e < a.graph.edge_count(); ++e) {
    EXPECT_EQ(a.graph.edge(e).from, b.graph.edge(e).from);
    EXPECT_EQ(a.graph.edge(e).to, b.graph.edge(e).to);
    EXPECT_DOUBLE_EQ(a.graph.edge(e).required_bandwidth_kbps,
                     b.graph.edge(e).required_bandwidth_kbps);
  }
}

TEST(TraceIo, RoundTripsGeneratedWorkload) {
  const auto trace = sample_trace();
  ASSERT_FALSE(trace.empty());
  std::stringstream ss;
  write_trace(ss, trace);
  const auto loaded = read_trace(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) expect_equal(trace[i], loaded[i]);
}

TEST(TraceIo, RoundTripsPolicies) {
  const auto trace = sample_trace(/*strict_policy_fraction=*/0.5);
  bool saw_strict = false;
  for (const auto& r : trace) saw_strict |= !r.policy.is_permissive();
  ASSERT_TRUE(saw_strict) << "fixture must exercise non-trivial policies";
  std::stringstream ss;
  write_trace(ss, trace);
  const auto loaded = read_trace(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) expect_equal(trace[i], loaded[i]);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream ss;
  write_trace(ss, {});
  EXPECT_TRUE(read_trace(ss).empty());
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# hello\n\nR 1 0.5 60 3 2 500 0.05 0 15\nN 7 2 20\n");
  const auto trace = read_trace(ss);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].graph.node_count(), 1u);
  EXPECT_EQ(trace[0].graph.node(0).function, 7u);
  EXPECT_TRUE(trace[0].policy.is_permissive());
}

TEST(TraceIo, RejectsMalformedInput) {
  {
    std::stringstream ss("N 1 2 3\n");  // node before header
    EXPECT_THROW(read_trace(ss), acp::PreconditionError);
  }
  {
    std::stringstream ss("R 1 0.5\n");  // truncated header
    EXPECT_THROW(read_trace(ss), acp::PreconditionError);
  }
  {
    std::stringstream ss("X what\n");  // unknown tag
    EXPECT_THROW(read_trace(ss), acp::PreconditionError);
  }
  {
    std::stringstream ss("R 1 0.5 60 3 2 500 0.05 9 15\n");  // bad security
    EXPECT_THROW(read_trace(ss), acp::PreconditionError);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const auto trace = sample_trace();
  const std::string path = ::testing::TempDir() + "/acpstream_trace_test.txt";
  save_trace(path, trace);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), trace.size());
  EXPECT_THROW(load_trace("/nonexistent/dir/trace.txt"), acp::PreconditionError);
}

}  // namespace
}  // namespace acp::workload
