// Tests for the probing-ratio tuner: profiling by trace replay, prediction,
// α selection with margin, re-profiling triggers, staircase dynamics.
#include <gtest/gtest.h>

#include <memory>

#include "core/tuner.h"
#include "test_helpers.h"
#include "net/topology.h"
#include "workload/generator.h"

namespace acp::core {
namespace {

using stream::QoSVector;
using stream::ResourceVector;

struct TunerFixture : ::testing::Test {
  void SetUp() override {
    util::Rng rng(42);
    net::TopologyConfig tc;
    tc.node_count = 400;
    ip = net::generate_power_law_topology(tc, rng);
    net::OverlayConfig oc;
    oc.member_count = 40;
    util::Rng orng(43);
    mesh = std::make_unique<net::OverlayMesh>(ip, oc, orng);
    util::Rng crng(44);
    catalog_rng = crng;
    sys = std::make_unique<stream::StreamSystem>(*mesh,
                                                 stream::FunctionCatalog::generate(8, crng));
    util::Rng drng(45);
    for (stream::NodeId n = 0; n < sys->node_count(); ++n) {
      sys->set_node_capacity(n, ResourceVector(100.0, 1000.0));
    }
    chain = acp::testing::compatible_chain(sys->catalog(), 3);
    for (stream::FunctionId f : chain) {
      for (int i = 0; i < 5; ++i) {
        sys->add_component(f, static_cast<stream::NodeId>(drng.below(sys->node_count())),
                           QoSVector::from_metrics(drng.uniform(5.0, 15.0), 0.001));
      }
    }
  }

  workload::Request make_request(double delay_req = 1500.0) {
    workload::Request req;
    req.id = next_id++;
    req.graph.add_node(chain[0], ResourceVector(8.0, 80.0));
    req.graph.add_node(chain[1], ResourceVector(8.0, 80.0));
    req.graph.add_node(chain[2], ResourceVector(8.0, 80.0));
    req.graph.add_edge(0, 1, 100.0);
    req.graph.add_edge(1, 2, 100.0);
    req.qos_req = QoSVector::from_metrics(delay_req, 0.5);
    return req;
  }

  net::Graph ip;
  std::unique_ptr<net::OverlayMesh> mesh;
  std::unique_ptr<stream::StreamSystem> sys;
  util::Rng catalog_rng{0};
  sim::Engine engine;
  stream::RequestId next_id = 1;
  std::vector<stream::FunctionId> chain;
};

TEST_F(TunerFixture, StartsAtBaseAlpha) {
  TunerConfig cfg;
  cfg.base_alpha = 0.1;
  ProbingRatioTuner tuner(*sys, engine, cfg);
  EXPECT_DOUBLE_EQ(tuner.alpha(), 0.1);
  EXPECT_TRUE(tuner.profile().empty());
}

TEST_F(TunerFixture, ProfilingBuildsMonotonicallyReasonableMapping) {
  ProbingRatioTuner tuner(*sys, engine);
  for (int i = 0; i < 40; ++i) tuner.record_request(make_request());
  tuner.run_profiling();
  ASSERT_FALSE(tuner.profile().empty());
  EXPECT_EQ(tuner.profiling_runs(), 1u);
  // Success rates are rates.
  for (const auto& [a, r] : tuner.profile()) {
    EXPECT_GE(a, 0.1);
    EXPECT_LE(a, 1.0);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  // The largest profiled alpha is at least as good as the smallest minus
  // noise (replay has no randomness, so this is deterministic).
  const double first = tuner.profile().begin()->second;
  const double last = tuner.profile().rbegin()->second;
  EXPECT_GE(last, first - 1e-9);
}

TEST_F(TunerFixture, ProfilingRequiresTrace) {
  ProbingRatioTuner tuner(*sys, engine);
  EXPECT_THROW(tuner.run_profiling(), acp::PreconditionError);
}

TEST_F(TunerFixture, PredictInterpolates) {
  ProbingRatioTuner tuner(*sys, engine);
  EXPECT_DOUBLE_EQ(tuner.predict(0.5), -1.0);  // no profile yet
  for (int i = 0; i < 30; ++i) tuner.record_request(make_request());
  tuner.run_profiling();
  const auto& prof = tuner.profile();
  ASSERT_GE(prof.size(), 2u);
  const auto it0 = prof.begin();
  const auto it1 = std::next(it0);
  const double mid_alpha = (it0->first + it1->first) / 2.0;
  const double expected = (it0->second + it1->second) / 2.0;
  EXPECT_NEAR(tuner.predict(mid_alpha), expected, 1e-9);
  // Clamped at the ends.
  EXPECT_DOUBLE_EQ(tuner.predict(0.0), it0->second);
  EXPECT_DOUBLE_EQ(tuner.predict(1.0), prof.rbegin()->second);
}

TEST_F(TunerFixture, SamplingTickProfilesOnFirstWindow) {
  TunerConfig cfg;
  cfg.target_success_rate = 0.5;
  ProbingRatioTuner tuner(*sys, engine, cfg);
  for (int i = 0; i < 30; ++i) {
    tuner.record_request(make_request());
    tuner.record_outcome(true);
  }
  tuner.run_sampling_tick();
  EXPECT_EQ(tuner.profiling_runs(), 1u);
  EXPECT_GT(tuner.alpha(), 0.0);
}

TEST_F(TunerFixture, NoReprofileWhenPredictionAccurate) {
  TunerConfig cfg;
  cfg.target_success_rate = 0.5;
  cfg.prediction_error_threshold = 0.05;
  ProbingRatioTuner tuner(*sys, engine, cfg);
  for (int i = 0; i < 30; ++i) {
    tuner.record_request(make_request());
    tuner.record_outcome(true);
  }
  tuner.run_sampling_tick();
  const auto runs = tuner.profiling_runs();
  const double predicted = tuner.predict(tuner.alpha());

  // Second window: report outcomes matching the prediction closely.
  for (int i = 0; i < 100; ++i) {
    tuner.record_request(make_request());
    tuner.record_outcome(i < static_cast<int>(predicted * 100.0));
  }
  tuner.run_sampling_tick();
  EXPECT_EQ(tuner.profiling_runs(), runs);  // no re-profile
}

TEST_F(TunerFixture, ReprofilesOnLargePredictionError) {
  TunerConfig cfg;
  cfg.target_success_rate = 0.5;
  cfg.prediction_error_threshold = 0.02;
  ProbingRatioTuner tuner(*sys, engine, cfg);
  for (int i = 0; i < 30; ++i) {
    tuner.record_request(make_request());
    tuner.record_outcome(true);
  }
  tuner.run_sampling_tick();
  const auto runs = tuner.profiling_runs();

  // Second window: measured success far below any sensible prediction.
  for (int i = 0; i < 60; ++i) {
    tuner.record_request(make_request());
    tuner.record_outcome(false);
  }
  tuner.run_sampling_tick();
  EXPECT_EQ(tuner.profiling_runs(), runs + 1);
}

TEST_F(TunerFixture, AlphaRisesWhenSystemLoadedAndTargetHigh) {
  // Load the system so low alpha cannot meet a high target.
  util::Rng rng(5);
  for (stream::NodeId n = 0; n < sys->node_count(); ++n) {
    if (n % 2 == 0) {
      sys->commit_node_direct(500 + n, n, ResourceVector(85.0, 850.0), 0.0);
    }
  }
  TunerConfig cfg;
  cfg.target_success_rate = 0.95;
  ProbingRatioTuner tuner(*sys, engine, cfg);
  for (int i = 0; i < 60; ++i) {
    tuner.record_request(make_request());
    tuner.record_outcome(false);
  }
  tuner.run_sampling_tick();
  EXPECT_GT(tuner.alpha(), cfg.base_alpha);
}

TEST_F(TunerFixture, AlphaRelaxesGraduallyNotAbruptly) {
  TunerConfig cfg;
  cfg.target_success_rate = 0.3;  // easily met
  cfg.base_alpha = 0.8;           // start high
  cfg.alpha_step = 0.1;
  ProbingRatioTuner tuner(*sys, engine, cfg);
  for (int i = 0; i < 40; ++i) {
    tuner.record_request(make_request());
    tuner.record_outcome(false);  // force profiling
  }
  tuner.run_sampling_tick();
  // Even if the profile says alpha=0.1 suffices, one tick only steps down
  // by alpha_step.
  EXPECT_GE(tuner.alpha(), 0.8 - cfg.alpha_step - 1e-9);
}

TEST_F(TunerFixture, PeriodicTickRunsThroughEngine) {
  TunerConfig cfg;
  cfg.sampling_period_s = 10.0;
  ProbingRatioTuner tuner(*sys, engine, cfg);
  tuner.start();
  for (int i = 0; i < 20; ++i) {
    tuner.record_request(make_request());
    tuner.record_outcome(false);
  }
  engine.run_until(10.5);
  EXPECT_EQ(tuner.profiling_runs(), 1u);
  EXPECT_THROW(tuner.start(), acp::PreconditionError);
}

TEST_F(TunerFixture, TraceIsBounded) {
  TunerConfig cfg;
  cfg.max_trace = 10;
  ProbingRatioTuner tuner(*sys, engine, cfg);
  for (int i = 0; i < 100; ++i) tuner.record_request(make_request());
  tuner.run_profiling();  // must replay at most 10 — just checking no blowup
  EXPECT_FALSE(tuner.profile().empty());
}

TEST_F(TunerFixture, RejectsBadConfig) {
  TunerConfig bad;
  bad.target_success_rate = 0.0;
  EXPECT_THROW(ProbingRatioTuner(*sys, engine, bad), acp::PreconditionError);
  bad = TunerConfig{};
  bad.base_alpha = 0.0;
  EXPECT_THROW(ProbingRatioTuner(*sys, engine, bad), acp::PreconditionError);
}

}  // namespace
}  // namespace acp::core
