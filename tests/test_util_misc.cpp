// Tests for logging, tables, and flag parsing.
#include <gtest/gtest.h>

#include <sstream>

#include "util/flags.h"
#include "util/logging.h"
#include "util/table.h"

namespace acp::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::set_level(LogLevel::kInfo);
    Logger::capture_to_buffer(true);
  }
  void TearDown() override {
    Logger::capture_to_buffer(false);
    Logger::set_level(LogLevel::kWarn);
  }
};

TEST_F(LoggingTest, FiltersBelowLevel) {
  ACP_LOG_DEBUG << "hidden";
  ACP_LOG_INFO << "visible";
  const auto out = Logger::take_buffer();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
}

TEST_F(LoggingTest, IncludesFileAndLine) {
  ACP_LOG_ERROR << "boom";
  const auto out = Logger::take_buffer();
  EXPECT_NE(out.find("test_util_misc.cpp"), std::string::npos);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(Logger::level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(Logger::level_name(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, SimTimeSourcePrefixesLines) {
  double now = 42.125;
  Logger::set_time_source([&now] { return now; });
  EXPECT_TRUE(Logger::has_time_source());
  ACP_LOG_INFO << "tick";
  now = 43.5;
  ACP_LOG_INFO << "tock";
  Logger::set_time_source(nullptr);
  EXPECT_FALSE(Logger::has_time_source());
  ACP_LOG_INFO << "untimed";

  const auto out = Logger::take_buffer();
  EXPECT_NE(out.find("[t=42.125000] "), std::string::npos);
  EXPECT_NE(out.find("[t=43.500000] "), std::string::npos);
  // After the source is cleared, lines carry no sim-time prefix.
  const auto untimed_pos = out.find("untimed");
  ASSERT_NE(untimed_pos, std::string::npos);
  EXPECT_EQ(out.rfind("[t=", untimed_pos), out.rfind("[t=43.5", untimed_pos));
}

TEST(Table, PrintAligns) {
  Table t({"name", "value"});
  t.add_row({std::string("x"), 1.5});
  t.add_row({std::string("longer"), std::int64_t{42}});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, PrecisionControl) {
  Table t({"v"});
  t.set_precision(4);
  t.add_row({3.14159});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("3.1416"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a,b", "c"});
  t.add_row({std::string("hello, world"), std::string("say \"hi\"")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"hello, world\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), PreconditionError);
}

TEST(Table, AtAccessor) {
  Table t({"a"});
  t.add_row({std::int64_t{7}});
  EXPECT_EQ(std::get<std::int64_t>(t.at(0, 0)), 7);
  EXPECT_THROW(t.at(1, 0), PreconditionError);
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog",     "--alpha=0.5", "--nodes", "400", "--verbose",
                        "--no-csv", "positional"};
  Flags f(7, argv);
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(f.get_int("nodes", 0), 400);
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("csv", true));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "positional");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  EXPECT_EQ(f.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("missing", 3), 3);
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, UnknownFlagsReported) {
  const char* argv[] = {"prog", "--known=1", "--typo=2"};
  Flags f(3, argv);
  (void)f.get_int("known", 0);
  const auto unknown = f.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

}  // namespace
}  // namespace acp::util
