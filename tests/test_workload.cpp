// Tests for application templates and the request generator.
#include <gtest/gtest.h>

#include <cmath>

#include "workload/generator.h"
#include "workload/templates.h"

namespace acp::workload {
namespace {

using stream::FunctionCatalog;

struct WorkloadFixture : ::testing::Test {
  void SetUp() override {
    util::Rng crng(42);
    catalog = FunctionCatalog::generate(80, crng);
    util::Rng trng(43);
    templates = TemplateLibrary::generate(catalog, {}, trng);
  }

  FunctionCatalog catalog;
  TemplateLibrary templates;
};

TEST_F(WorkloadFixture, GeneratesTwentyWellFormedTemplates) {
  EXPECT_EQ(templates.size(), 20u);
  for (std::size_t t = 0; t < templates.size(); ++t) {
    EXPECT_TRUE(TemplateLibrary::well_formed(templates.shape(t), catalog)) << "template " << t;
  }
}

TEST_F(WorkloadFixture, TemplateShapesMatchPaperSpec) {
  bool saw_path = false, saw_dag = false;
  for (std::size_t t = 0; t < templates.size(); ++t) {
    const auto& shape = templates.shape(t);
    saw_path |= !shape.is_dag;
    saw_dag |= shape.is_dag;
    EXPECT_GE(shape.functions.size(), 2u);
    // DAG shapes: split + two interiors + merge, branch paths of <= 5.
    EXPECT_LE(shape.functions.size(), shape.is_dag ? 8u : 5u);
  }
  EXPECT_TRUE(saw_path);
  EXPECT_TRUE(saw_dag);
}

// Property sweep: template generation is well-formed for many seeds.
class TemplateSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TemplateSeedSweep, AlwaysWellFormed) {
  util::Rng crng(GetParam());
  const auto catalog = FunctionCatalog::generate(80, crng);
  util::Rng trng(GetParam() + 1);
  const auto lib = TemplateLibrary::generate(catalog, {}, trng);
  for (std::size_t t = 0; t < lib.size(); ++t) {
    ASSERT_TRUE(TemplateLibrary::well_formed(lib.shape(t), catalog))
        << "seed " << GetParam() << " template " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemplateSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST_F(WorkloadFixture, RequestsInstantiateTemplatesWithDemands) {
  WorkloadConfig cfg;
  util::Rng rng(7);
  RequestGenerator gen(catalog, templates, cfg, {{0.0, 60.0}}, 1000, rng);
  for (int i = 0; i < 50; ++i) {
    const auto req = gen.make_request(static_cast<double>(i));
    EXPECT_GT(req.id, 0u);
    EXPECT_LT(req.template_index, templates.size());
    EXPECT_LT(req.client_ip, 1000u);
    EXPECT_GE(req.duration_s, cfg.min_duration_s);
    EXPECT_LE(req.duration_s, cfg.max_duration_s);
    EXPECT_TRUE(req.graph.is_dag());
    for (stream::FnNodeIndex n = 0; n < req.graph.node_count(); ++n) {
      EXPECT_GE(req.graph.node(n).required.cpu(), cfg.min_cpu);
      EXPECT_LE(req.graph.node(n).required.cpu(), cfg.max_cpu);
      EXPECT_GE(req.graph.node(n).required.memory_mb(), cfg.min_memory_mb);
      EXPECT_LE(req.graph.node(n).required.memory_mb(), cfg.max_memory_mb);
    }
    for (stream::FnEdgeIndex e = 0; e < req.graph.edge_count(); ++e) {
      EXPECT_GE(req.graph.edge(e).required_bandwidth_kbps, cfg.min_bandwidth_kbps);
      EXPECT_LE(req.graph.edge(e).required_bandwidth_kbps, cfg.max_bandwidth_kbps);
    }
    EXPECT_GE(req.qos_req.delay_ms(), cfg.min_delay_req_ms);
    EXPECT_LE(req.qos_req.delay_ms(), cfg.max_delay_req_ms);
  }
}

TEST_F(WorkloadFixture, QosScaleTightensRequirements) {
  WorkloadConfig tight;
  tight.qos_scale = 0.5;
  util::Rng r1(7), r2(7);
  RequestGenerator loose_gen(catalog, templates, {}, {{0.0, 60.0}}, 1000, r1);
  RequestGenerator tight_gen(catalog, templates, tight, {{0.0, 60.0}}, 1000, r2);
  const auto a = loose_gen.make_request(0.0);
  const auto b = tight_gen.make_request(0.0);
  EXPECT_NEAR(b.qos_req.delay_ms(), a.qos_req.delay_ms() * 0.5, 1e-9);
}

TEST_F(WorkloadFixture, RateScheduleSteps) {
  util::Rng rng(7);
  RequestGenerator gen(catalog, templates, {}, {{0.0, 40.0}, {50.0, 80.0}, {100.0, 60.0}}, 100,
                       rng);
  EXPECT_DOUBLE_EQ(gen.rate_at(0.0), 40.0);
  EXPECT_DOUBLE_EQ(gen.rate_at(49.9 * 60.0), 40.0);
  EXPECT_DOUBLE_EQ(gen.rate_at(50.0 * 60.0), 80.0);
  EXPECT_DOUBLE_EQ(gen.rate_at(120.0 * 60.0), 60.0);
}

TEST_F(WorkloadFixture, PoissonArrivalCountMatchesRate) {
  util::Rng rng(11);
  RequestGenerator gen(catalog, templates, {}, {{0.0, 60.0}}, 100, rng);
  const auto trace = gen.generate_trace(60.0 * 60.0);  // 1 hour at 60/min
  // Poisson with mean 3600 → std ~60; allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(trace.size()), 3600.0, 300.0);
  // Arrival times strictly increasing and in range.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].arrival_time, trace[i - 1].arrival_time);
    EXPECT_LT(trace[i].arrival_time, 3600.0);
  }
}

TEST_F(WorkloadFixture, ZeroRateJumpsToNextStep) {
  util::Rng rng(13);
  RequestGenerator gen(catalog, templates, {}, {{0.0, 0.0}, {10.0, 60.0}}, 100, rng);
  const double gap = gen.next_interarrival(0.0);
  EXPECT_DOUBLE_EQ(gap, 10.0 * 60.0);  // jump to the first active step
}

TEST_F(WorkloadFixture, ZeroForeverMeansNoArrivals) {
  util::Rng rng(13);
  RequestGenerator gen(catalog, templates, {}, {{0.0, 0.0}}, 100, rng);
  EXPECT_TRUE(std::isinf(gen.next_interarrival(0.0)));
  EXPECT_TRUE(gen.generate_trace(600.0).empty());
}

TEST_F(WorkloadFixture, RequestIdsAreSequentialAndUnique) {
  util::Rng rng(17);
  RequestGenerator gen(catalog, templates, {}, {{0.0, 60.0}}, 100, rng);
  const auto a = gen.make_request(0.0);
  const auto b = gen.make_request(1.0);
  EXPECT_EQ(b.id, a.id + 1);
  EXPECT_EQ(gen.generated_count(), 2u);
}

TEST_F(WorkloadFixture, GeneratorValidatesConfig) {
  util::Rng rng(19);
  EXPECT_THROW(RequestGenerator(catalog, templates, {}, {}, 100, rng), acp::PreconditionError);
  WorkloadConfig bad;
  bad.qos_scale = 0.0;
  EXPECT_THROW(RequestGenerator(catalog, templates, bad, {{0.0, 1.0}}, 100, rng),
               acp::PreconditionError);
}

}  // namespace
}  // namespace acp::workload
