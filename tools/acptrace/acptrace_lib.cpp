#include "acptrace/acptrace_lib.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <deque>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/metrics.h"
#include "util/error.h"

namespace acp::tracecli {

// ---- JSON parser -------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw PreconditionError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_literal_bool();
      case 'n': return parse_literal_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // The writers in this repo never emit \u escapes for anything the
          // analyzer compares; decode to '?' rather than carry ICU here.
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          pos_ += 4;
          out += '?';
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  JsonValue parse_literal_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue parse_literal_null() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
}

std::string JsonValue::str_or(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->string : fallback;
}

JsonValue parse_json(const std::string& text) { return JsonParser(text).parse_document(); }

// ---- Trace loading -------------------------------------------------------------

TraceData load_trace(std::istream& in) {
  TraceData data;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    data.events.push_back(obs::parse_trace_line(line));
    ++data.lines;
    if (data.events.back().str("type") == "trace_truncated") data.truncated = true;
  }
  return data;
}

TraceData load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw PreconditionError("cannot open trace file: " + path);
  return load_trace(in);
}

// ---- Shared per-request reconstruction ----------------------------------------

namespace {

/// (run, req) — probe and request ids restart across runs in one file.
using ReqKey = std::pair<std::uint64_t, std::uint64_t>;

ReqKey req_key(const obs::ParsedTraceEvent& ev) {
  return {static_cast<std::uint64_t>(ev.num("run")), static_cast<std::uint64_t>(ev.num("req"))};
}

struct ProbeInfo {
  std::uint64_t parent = 0;
  std::uint64_t node = 0;
  std::uint64_t hop = 0;
  std::uint64_t path = 0;
  double spawn_t = 0.0;
  double end_t = 0.0;       ///< last hop/terminal event time
  bool returned = false;
  std::uint64_t retries = 0;
  std::int64_t component = -1;        ///< component being probed for (-1 at the root)
  std::int64_t moved_component = -1;  ///< cause of a component_moved rejection
  std::string reason;                 ///< probe_rejected reason, else empty
  // Disposition: what ended this probe's life.
  enum class End { kNone, kFork, kReturned, kRejected } end = End::kNone;
};

struct ReqInfo {
  bool accepted = false;
  bool terminal = false;    ///< composition_confirmed/failed seen
  bool confirmed = false;
  bool timed_out = false;
  double accepted_t = 0.0;
  double end_t = 0.0;
  double setup_s = 0.0;
  std::uint64_t deputy = 0;
  std::uint64_t paths = 0;
  double alpha = 0.0;
  std::uint64_t session = 0;  ///< composition_confirmed session id; 0 = none
  double phi = 0.0;
  std::uint64_t spawns = 0, forks = 0, returns = 0, rejects = 0;
  std::uint64_t retries = 0;  ///< probe_retry spans (retransmissions, not dispositions)
  std::uint64_t terminals = 0;
  double timeout_outstanding = 0.0;
  std::map<std::string, std::uint64_t> reject_reasons;
  std::map<std::uint64_t, ProbeInfo> probes;
};

const char* disposition_name(ProbeInfo::End e) {
  switch (e) {
    case ProbeInfo::End::kFork: return "forked";
    case ProbeInfo::End::kReturned: return "returned";
    case ProbeInfo::End::kRejected: return "rejected";
    case ProbeInfo::End::kNone: break;
  }
  return "none";
}

/// Walks the stream once, building per-request state and (optionally)
/// collecting invariant violations. analyze() and validate() share this so
/// they can never disagree about what a trace means.
std::map<ReqKey, ReqInfo> reconstruct(const TraceData& trace, std::vector<Violation>* out) {
  std::map<ReqKey, ReqInfo> reqs;
  // Probe ids are unique per run (per tracer/protocol instance).
  std::map<std::uint64_t, std::map<std::uint64_t, ReqKey>> probe_owner;  // run → probe → req

  const auto violation = [&](const std::string& what) {
    if (out != nullptr) out->push_back({what});
  };

  for (const auto& ev : trace.events) {
    const std::string& type = ev.str("type");
    const auto run = static_cast<std::uint64_t>(ev.num("run"));

    if (type == "request_accepted") {
      ReqInfo& r = reqs[req_key(ev)];
      if (r.accepted) {
        violation("run " + std::to_string(run) + " req " + std::to_string(ev.num("req")) +
                  ": duplicate request_accepted");
      }
      r.accepted = true;
      r.accepted_t = ev.num("t");
      r.deputy = static_cast<std::uint64_t>(ev.num("deputy"));
      r.paths = static_cast<std::uint64_t>(ev.num("paths"));
      r.alpha = ev.num("alpha");
      continue;
    }

    if (type == "probe_spawned") {
      const auto id = static_cast<std::uint64_t>(ev.num("probe"));
      const auto parent = static_cast<std::uint64_t>(ev.num("parent"));
      auto& owners = probe_owner[run];
      if (owners.count(id) != 0) {
        violation("run " + std::to_string(run) + ": probe " + std::to_string(id) +
                  " spawned twice");
        continue;
      }
      if (parent != 0 && owners.count(parent) == 0) {
        violation("run " + std::to_string(run) + ": probe " + std::to_string(id) +
                  " spawned by unknown parent " + std::to_string(parent));
      }
      owners[id] = req_key(ev);
      ReqInfo& r = reqs[req_key(ev)];
      ++r.spawns;
      ProbeInfo& p = r.probes[id];
      p.parent = parent;
      p.node = static_cast<std::uint64_t>(ev.num("node"));
      p.hop = static_cast<std::uint64_t>(ev.num("hop"));
      p.path = static_cast<std::uint64_t>(ev.num("path"));
      if (ev.has("component")) p.component = static_cast<std::int64_t>(ev.num("component"));
      p.spawn_t = ev.num("t");
      p.end_t = p.spawn_t;
      continue;
    }

    if (type == "probe_hop" || type == "probe_rejected" || type == "probe_returned") {
      const auto id = static_cast<std::uint64_t>(ev.num("probe"));
      auto& owners = probe_owner[run];
      const auto owner = owners.find(id);
      if (owner == owners.end()) {
        violation("run " + std::to_string(run) + ": " + type + " references never-spawned probe " +
                  std::to_string(id));
        continue;
      }
      ReqInfo& r = reqs[owner->second];
      ProbeInfo& p = r.probes[id];
      p.end_t = ev.num("t");

      ProbeInfo::End end = ProbeInfo::End::kNone;
      if (type == "probe_hop" && ev.num("spawned") > 0.0) end = ProbeInfo::End::kFork;
      if (type == "probe_returned") end = ProbeInfo::End::kReturned;
      if (type == "probe_rejected") end = ProbeInfo::End::kRejected;
      if (end == ProbeInfo::End::kNone) continue;  // hop that died childless; reject follows

      if (p.end != ProbeInfo::End::kNone) {
        violation("run " + std::to_string(run) + ": probe " + std::to_string(id) +
                  " already " + disposition_name(p.end) + ", then " + type);
        continue;
      }
      p.end = end;
      switch (end) {
        case ProbeInfo::End::kFork: ++r.forks; break;
        case ProbeInfo::End::kReturned:
          ++r.returns;
          p.returned = true;
          break;
        case ProbeInfo::End::kRejected:
          ++r.rejects;
          p.reason = ev.has("reason") ? ev.str("reason") : "?";
          if (ev.has("component")) {
            p.moved_component = static_cast<std::int64_t>(ev.num("component"));
          }
          ++r.reject_reasons[p.reason];
          break;
        case ProbeInfo::End::kNone: break;
      }
      continue;
    }

    if (type == "probe_retry") {
      // A lost transmission being retransmitted: the probe is still the SAME
      // in-flight probe, so a retry never counts as a second disposition —
      // it only extends the probe's lifetime. It must reference a live
      // (spawned, undisposed) probe.
      const auto id = static_cast<std::uint64_t>(ev.num("probe"));
      auto& owners = probe_owner[run];
      const auto owner = owners.find(id);
      if (owner == owners.end()) {
        violation("run " + std::to_string(run) + ": probe_retry references never-spawned probe " +
                  std::to_string(id));
        continue;
      }
      ReqInfo& r = reqs[owner->second];
      ProbeInfo& p = r.probes[id];
      if (p.end != ProbeInfo::End::kNone) {
        violation("run " + std::to_string(run) + ": probe " + std::to_string(id) + " already " +
                  disposition_name(p.end) + ", then probe_retry");
        continue;
      }
      p.end_t = ev.num("t");
      ++p.retries;
      ++r.retries;
      continue;
    }

    if (type == "probe_timeout") {
      ReqInfo& r = reqs[req_key(ev)];
      r.timed_out = true;
      r.timeout_outstanding += ev.num("outstanding");
      continue;
    }

    if (type == "composition_confirmed" || type == "composition_failed") {
      ReqInfo& r = reqs[req_key(ev)];
      if (!r.accepted) {
        violation("run " + std::to_string(run) + " req " + std::to_string(ev.num("req")) +
                  ": " + type + " without request_accepted");
      }
      ++r.terminals;
      if (r.terminals > 1) {
        violation("run " + std::to_string(run) + " req " + std::to_string(ev.num("req")) +
                  ": second terminal event (" + type + ")");
      }
      r.terminal = true;
      r.confirmed = type == "composition_confirmed";
      r.end_t = ev.num("t");
      r.setup_s = ev.has("setup_s") ? ev.num("setup_s") : r.end_t - r.accepted_t;
      if (r.confirmed) {
        r.session = static_cast<std::uint64_t>(ev.num("session"));
        r.phi = ev.num("phi");
      }
      continue;
    }

    // run_started, trace_header, trace_truncated, transients_cancelled,
    // component_migrated: no per-probe accounting.
  }

  if (out != nullptr) {
    for (const auto& [key, r] : reqs) {
      const std::string who =
          "run " + std::to_string(key.first) + " req " + std::to_string(key.second);
      // A truncated trace legitimately cuts terminals/balance short; the
      // reference checks above still apply in full.
      if (trace.truncated) continue;
      if (r.accepted && !r.terminal) violation(who + ": no composition_confirmed/failed");
      const std::uint64_t settled =
          r.forks + r.returns + r.rejects + static_cast<std::uint64_t>(r.timeout_outstanding);
      if (r.spawns != settled) {
        violation(who + ": probe accounting imbalance: spawned " + std::to_string(r.spawns) +
                  " != forked " + std::to_string(r.forks) + " + returned " +
                  std::to_string(r.returns) + " + rejected " + std::to_string(r.rejects) +
                  " + outstanding-at-timeout " +
                  std::to_string(static_cast<std::uint64_t>(r.timeout_outstanding)));
      }
    }
  }
  return reqs;
}

}  // namespace

// ---- analyze -------------------------------------------------------------------

Analysis analyze(const TraceData& trace, std::size_t top_k) {
  const std::map<ReqKey, ReqInfo> reqs = reconstruct(trace, nullptr);

  Analysis a;
  a.truncated = trace.truncated;
  double setup_sum = 0.0;
  std::vector<RequestPath> paths;
  for (const auto& [key, r] : reqs) {
    if (!r.accepted || !r.terminal) continue;
    ++a.requests;
    if (r.confirmed) ++a.confirmed;
    else ++a.failed;
    if (r.timed_out) ++a.timeouts;
    a.probes_spawned += r.spawns;
    a.probe_retries += r.retries;
    setup_sum += r.setup_s;
    a.max_setup_s = std::max(a.max_setup_s, r.setup_s);

    RequestPath rp;
    rp.run = key.first;
    rp.req = key.second;
    rp.confirmed = r.confirmed;
    rp.timed_out = r.timed_out;
    rp.accepted_t = r.accepted_t;
    rp.end_t = r.end_t;
    rp.setup_s = r.setup_s;
    rp.probes_spawned = r.spawns;

    // Critical path: the latest-completing returned probe is the one the
    // deputy's deadline/merge actually waited on; fall back to the
    // latest-ending probe when nothing returned.
    std::uint64_t leaf = 0;
    bool leaf_returned = false;
    double leaf_t = -1.0;
    for (const auto& [id, p] : r.probes) {
      const bool better = (p.returned && !leaf_returned) ||
                          (p.returned == leaf_returned && p.end_t > leaf_t);
      if (leaf == 0 || better) {
        leaf = id;
        leaf_returned = p.returned;
        leaf_t = p.end_t;
      }
    }
    // Walk leaf → root; guard against cycles from corrupt input.
    std::uint64_t cursor = leaf;
    while (cursor != 0 && rp.critical_path.size() <= r.probes.size()) {
      const auto it = r.probes.find(cursor);
      if (it == r.probes.end()) break;
      const ProbeInfo& p = it->second;
      rp.critical_path.push_back(
          {cursor, p.node, p.hop, p.spawn_t, p.end_t, p.end_t - p.spawn_t});
      cursor = p.parent;
    }
    std::reverse(rp.critical_path.begin(), rp.critical_path.end());
    paths.push_back(std::move(rp));
  }
  a.mean_setup_s = a.requests > 0 ? setup_sum / static_cast<double>(a.requests) : 0.0;

  std::sort(paths.begin(), paths.end(),
            [](const RequestPath& x, const RequestPath& y) { return x.setup_s > y.setup_s; });
  if (paths.size() > top_k) paths.resize(top_k);
  a.slowest = std::move(paths);
  return a;
}

void write_analysis(std::ostream& os, const Analysis& a) {
  os << "requests: " << a.requests << " (confirmed " << a.confirmed << ", failed " << a.failed
     << ", timeouts " << a.timeouts << ")\n";
  os << "probes spawned: " << a.probes_spawned << "\n";
  if (a.probe_retries > 0) os << "probe retries: " << a.probe_retries << "\n";
  os << "setup time: mean " << a.mean_setup_s << " s, max " << a.max_setup_s << " s\n";
  if (a.truncated) os << "NOTE: trace is truncated (abnormal writer exit)\n";
  for (const RequestPath& rp : a.slowest) {
    os << "\nrun " << rp.run << " req " << rp.req << ": " << rp.setup_s << " s, "
       << (rp.confirmed ? "confirmed" : "failed") << (rp.timed_out ? " (timeout)" : "") << ", "
       << rp.probes_spawned << " probes\n";
    os << "  critical path (" << rp.critical_path.size() << " hops):\n";
    for (const HopTiming& h : rp.critical_path) {
      os << "    hop " << h.hop << "  node " << h.node << "  probe " << h.probe << "  +"
         << h.latency_s << " s (t=" << h.spawn_t << " → " << h.end_t << ")\n";
    }
  }
}

// ---- validate -------------------------------------------------------------------

std::vector<Violation> validate(const TraceData& trace) {
  std::vector<Violation> violations;
  reconstruct(trace, &violations);
  return violations;
}

// ---- diff ------------------------------------------------------------------------

BenchDoc decode_bench(const JsonValue& doc) {
  const std::string schema = doc.str_or("schema", "");
  if (schema != "acp-bench/1" && schema != "acp-bench/2") {
    throw PreconditionError("not an acp-bench/1|2 document (schema: \"" + schema + "\")");
  }
  BenchDoc b;
  b.schema = schema;
  b.name = doc.str_or("name", "");
  b.git_sha = doc.str_or("git_sha", "");
  b.host = doc.str_or("host", "");  // absent in v1 → empty → host gates skip
  b.wall_s = doc.num_or("wall_s", 0.0);
  b.jobs = static_cast<std::uint64_t>(doc.num_or("jobs", 1.0));
  if (const JsonValue* h = doc.find("headline")) {
    b.runs = static_cast<std::uint64_t>(h->num_or("runs", 0.0));
    b.success_rate = h->num_or("success_rate", 0.0);
    b.overhead_per_minute = h->num_or("overhead_per_minute", 0.0);
    b.mean_phi = h->num_or("mean_phi", 0.0);
    b.events_per_sec = h->num_or("events_per_sec", 0.0);
    b.peak_rss_bytes = static_cast<std::uint64_t>(h->num_or("peak_rss_bytes", 0.0));
  }
  if (const JsonValue* scopes = doc.find("scopes")) {
    for (const JsonValue& s : scopes->array) {
      BenchDoc::Scope sc;
      sc.count = static_cast<std::uint64_t>(s.num_or("count", 0.0));
      sc.total_s = s.num_or("total_s", 0.0);
      sc.mean_s = s.num_or("mean_s", 0.0);
      sc.p99_s = s.num_or("p99_s", 0.0);
      b.scopes[s.str_or("scope", "?")] = sc;
    }
  }
  if (const JsonValue* counters = doc.find("counters")) {
    for (const auto& [key, value] : counters->object) {
      b.counters[key] = static_cast<std::uint64_t>(value.number);
    }
  }
  return b;
}

BenchDoc load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw PreconditionError("cannot open bench report: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_bench(parse_json(buf.str()));
}

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

DiffResult diff(const BenchDoc& base, const BenchDoc& current, const DiffThresholds& th) {
  DiffResult res;
  if (base.name != current.name) {
    res.notes.push_back("comparing different benches: " + base.name + " vs " + current.name);
  }
  // Different worker-pool widths make every wall-clock observable
  // incomparable (N workers sharing the same cores inflate per-scope means
  // by up to Nx), so timing gates only apply at equal jobs. Sim metrics are
  // jobs-invariant by design and stay gated regardless.
  const bool wall_comparable = base.jobs == current.jobs;
  if (!wall_comparable) {
    res.notes.push_back("jobs differ: " + std::to_string(base.jobs) + " vs " +
                        std::to_string(current.jobs) +
                        " (wall-clock gates skipped; sim metrics must still agree)");
  }

  if (th.require_identical_sim) {
    // Jobs-invariance gate: the two documents describe the same seeded
    // simulation, so every deterministic observable must match bit-for-bit.
    if (base.runs != current.runs) {
      res.regressions.push_back("sim not identical: runs " + std::to_string(base.runs) + " vs " +
                                std::to_string(current.runs));
    }
    const auto require_exact = [&res](const char* what, double b, double c) {
      if (b != c) {
        res.regressions.push_back(std::string("sim not identical: ") + what + " " + fmt(b) +
                                  " vs " + fmt(c));
      }
    };
    require_exact("success_rate", base.success_rate, current.success_rate);
    require_exact("overhead_per_minute", base.overhead_per_minute, current.overhead_per_minute);
    require_exact("mean_phi", base.mean_phi, current.mean_phi);
    for (const auto& [name, b] : base.counters) {
      const auto it = current.counters.find(name);
      if (it == current.counters.end()) {
        res.regressions.push_back("sim not identical: counter " + name + " missing in current");
      } else if (it->second != b) {
        res.regressions.push_back("sim not identical: counter " + name + " " +
                                  std::to_string(b) + " vs " + std::to_string(it->second));
      }
    }
    for (const auto& [name, c] : current.counters) {
      (void)c;
      if (base.counters.count(name) == 0) {
        res.regressions.push_back("sim not identical: counter " + name + " missing in base");
      }
    }
  }

  // Deterministic sim metrics: same seed ⇒ same numbers, so any drift is a
  // code-behavior change, not noise.
  const double drop = base.success_rate - current.success_rate;
  if (drop > th.max_success_drop) {
    res.regressions.push_back("success_rate dropped " + fmt(drop) + " (" +
                              fmt(base.success_rate) + " → " + fmt(current.success_rate) +
                              ", allowed drop " + fmt(th.max_success_drop) + ")");
  }
  if (base.overhead_per_minute > 0.0 &&
      current.overhead_per_minute > base.overhead_per_minute * th.max_overhead_ratio) {
    res.regressions.push_back(
        "overhead_per_minute grew " + fmt(current.overhead_per_minute / base.overhead_per_minute) +
        "x (" + fmt(base.overhead_per_minute) + " → " + fmt(current.overhead_per_minute) +
        ", allowed " + fmt(th.max_overhead_ratio) + "x)");
  }
  if (base.mean_phi > 0.0 && current.mean_phi > base.mean_phi * th.max_phi_ratio) {
    res.regressions.push_back("mean_phi grew " + fmt(current.mean_phi / base.mean_phi) + "x (" +
                              fmt(base.mean_phi) + " → " + fmt(current.mean_phi) + ", allowed " +
                              fmt(th.max_phi_ratio) + "x)");
  }

  // Wall-clock: noisy across machines; thresholds are the caller's problem
  // (CI passes very loose ones).
  if (wall_comparable && base.wall_s > 0.0 && current.wall_s > base.wall_s * th.max_wall_ratio) {
    res.regressions.push_back("wall_s grew " + fmt(current.wall_s / base.wall_s) + "x (" +
                              fmt(base.wall_s) + " → " + fmt(current.wall_s) + " s, allowed " +
                              fmt(th.max_wall_ratio) + "x)");
  }

  // Host-headline gates (v2): even same-jobs numbers are incomparable
  // across machines, so these additionally need matching host names. Zero
  // on either side means the field predates the v2 schema — skip.
  const bool host_comparable =
      wall_comparable && !base.host.empty() && base.host == current.host;
  if (wall_comparable && !base.host.empty() && !current.host.empty() &&
      base.host != current.host) {
    res.notes.push_back("hosts differ: " + base.host + " vs " + current.host +
                        " (events_per_sec / peak RSS gates skipped)");
  }
  if (host_comparable && base.events_per_sec > 0.0 && current.events_per_sec > 0.0 &&
      current.events_per_sec < base.events_per_sec * th.min_events_rate_ratio) {
    res.regressions.push_back(
        "events_per_sec fell to " + fmt(current.events_per_sec / base.events_per_sec) + "x (" +
        fmt(base.events_per_sec) + " → " + fmt(current.events_per_sec) + ", floor " +
        fmt(th.min_events_rate_ratio) + "x)");
  }
  if (host_comparable && base.peak_rss_bytes > 0 && current.peak_rss_bytes > 0 &&
      static_cast<double>(current.peak_rss_bytes) >
          static_cast<double>(base.peak_rss_bytes) * th.max_rss_ratio) {
    res.regressions.push_back(
        "peak_rss_bytes grew " +
        fmt(static_cast<double>(current.peak_rss_bytes) /
            static_cast<double>(base.peak_rss_bytes)) +
        "x (" + std::to_string(base.peak_rss_bytes) + " → " +
        std::to_string(current.peak_rss_bytes) + ", allowed " + fmt(th.max_rss_ratio) + "x)");
  }
  for (const auto& [name, b] : base.scopes) {
    const auto it = current.scopes.find(name);
    if (it == current.scopes.end()) {
      res.notes.push_back("scope disappeared: " + name);
      continue;
    }
    if (!wall_comparable) continue;  // scope timings meaningless across jobs widths
    if (b.total_s < th.min_scope_total_s || b.mean_s <= 0.0) continue;  // below noise floor
    const double ratio = it->second.mean_s / b.mean_s;
    if (ratio > th.max_scope_ratio) {
      res.regressions.push_back("scope " + name + " mean_s grew " + fmt(ratio) + "x (" +
                                fmt(b.mean_s) + " → " + fmt(it->second.mean_s) +
                                " s, allowed " + fmt(th.max_scope_ratio) + "x)");
    }
  }
  for (const auto& [name, c] : current.scopes) {
    (void)c;
    if (base.scopes.count(name) == 0) res.notes.push_back("new scope: " + name);
  }
  return res;
}

void write_diff(std::ostream& os, const BenchDoc& base, const BenchDoc& current,
                const DiffResult& result) {
  os << "bench: " << current.name << "  (base " << base.git_sha << " → current "
     << current.git_sha << ")\n";
  os << "wall_s: " << base.wall_s << " → " << current.wall_s << "\n";
  if (base.events_per_sec > 0.0 || current.events_per_sec > 0.0) {
    os << "events_per_sec: " << base.events_per_sec << " → " << current.events_per_sec << "\n";
  }
  if (base.peak_rss_bytes > 0 || current.peak_rss_bytes > 0) {
    os << "peak_rss_bytes: " << base.peak_rss_bytes << " → " << current.peak_rss_bytes << "\n";
  }
  os << "success_rate: " << base.success_rate << " → " << current.success_rate << "\n";
  os << "overhead_per_minute: " << base.overhead_per_minute << " → "
     << current.overhead_per_minute << "\n";
  os << "mean_phi: " << base.mean_phi << " → " << current.mean_phi << "\n";
  for (const std::string& n : result.notes) os << "note: " << n << "\n";
  if (result.ok()) {
    os << "OK: no regression beyond thresholds\n";
  } else {
    for (const std::string& r : result.regressions) os << "REGRESSION: " << r << "\n";
  }
}

// ---- timeline loading -----------------------------------------------------------

TimelineData load_timeline(std::istream& in) {
  TimelineData data;
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++data.lines;
    const obs::ParsedTraceEvent ev = obs::parse_trace_line(line);
    const std::string& type = ev.str("type");
    if (!saw_header) {
      if (type != "header" || ev.str("schema").rfind("acp-timeline/", 0) != 0) {
        throw PreconditionError(
            "not an acp-timeline stream (first row must be the schema header)");
      }
      data.schema = ev.str("schema");
      data.bench = ev.str("bench");
      data.git_sha = ev.str("git_sha");
      data.seed = static_cast<std::uint64_t>(ev.num("seed"));
      data.quick = ev.num("quick") != 0.0;
      saw_header = true;
      continue;
    }
    if (type == "run_start") {
      data.run_labels[static_cast<std::uint64_t>(ev.num("run"))] = ev.str("label");
      data.sim_lines.push_back(line);
      continue;
    }
    if (type == "sample") {
      TimelineSampleRow r;
      r.run = static_cast<std::uint64_t>(ev.num("run"));
      r.t = ev.num("t");
      r.events = static_cast<std::uint64_t>(ev.num("events"));
      r.events_per_s = ev.num("events_per_s");
      r.queue_depth = static_cast<std::uint64_t>(ev.num("queue_depth"));
      r.live_probes = static_cast<std::uint64_t>(ev.num("live_probes"));
      r.active_sessions = static_cast<std::uint64_t>(ev.num("active_sessions"));
      r.requests = static_cast<std::uint64_t>(ev.num("requests"));
      r.successes = static_cast<std::uint64_t>(ev.num("successes"));
      r.success_rate = ev.num("success_rate");
      r.mean_phi = ev.num("mean_phi");
      r.allocs = static_cast<std::uint64_t>(ev.num("allocs"));
      data.samples.push_back(r);
      data.sim_lines.push_back(line);
      continue;
    }
    if (type == "host_sample") {
      TimelineHostRow h;
      h.run = static_cast<std::uint64_t>(ev.num("run"));
      h.t = ev.num("t");
      h.wall_s = ev.num("wall_s");
      h.peak_rss_bytes = static_cast<std::uint64_t>(ev.num("peak_rss_bytes"));
      data.host_samples.push_back(h);
      continue;
    }
    // Forward compatibility: unknown row types are deterministic unless the
    // writer marked them host-side by the host_ prefix convention.
    if (type.rfind("host_", 0) != 0) data.sim_lines.push_back(line);
  }
  if (!saw_header) throw PreconditionError("empty timeline stream (no header row)");
  return data;
}

TimelineData load_timeline_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw PreconditionError("cannot open timeline file: " + path);
  return load_timeline(in);
}

bool is_timeline_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string first;
  if (!std::getline(in, first)) return false;
  return first.find("\"acp-timeline/") != std::string::npos;
}

// ---- timeline analysis ----------------------------------------------------------

namespace {

/// Longest window of >= 3 samples with every events_per_s within
/// tol*window-mean of the window mean. Sliding two-pointer with monotonic
/// min/max deques: for each right end the left end only ever advances, so
/// the scan is linear. (Shrinking re-centres the mean, so this is a greedy
/// maximal window per right end — exact enough for steady-state reporting.)
SteadyWindow find_steady(const std::vector<const TimelineSampleRow*>& rows, double tol) {
  SteadyWindow best;
  std::vector<double> prefix(rows.size() + 1, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) prefix[i + 1] = prefix[i] + rows[i]->events_per_s;
  std::deque<std::size_t> minq, maxq;
  std::size_t i = 0;
  for (std::size_t j = 0; j < rows.size(); ++j) {
    const double v = rows[j]->events_per_s;
    while (!minq.empty() && rows[minq.back()]->events_per_s >= v) minq.pop_back();
    minq.push_back(j);
    while (!maxq.empty() && rows[maxq.back()]->events_per_s <= v) maxq.pop_back();
    maxq.push_back(j);
    const auto steady = [&] {
      const double mean = (prefix[j + 1] - prefix[i]) / static_cast<double>(j - i + 1);
      const double band = tol * mean + 1e-12;
      return rows[maxq.front()]->events_per_s - mean <= band &&
             mean - rows[minq.front()]->events_per_s <= band;
    };
    while (i < j && !steady()) {
      if (minq.front() == i) minq.pop_front();
      if (maxq.front() == i) maxq.pop_front();
      ++i;
    }
    const std::size_t len = j - i + 1;
    if (len >= 3 && len > best.samples && steady()) {
      best.found = true;
      best.samples = len;
      best.start_t = rows[i]->t;
      best.end_t = rows[j]->t;
      best.mean_events_per_s = (prefix[j + 1] - prefix[i]) / static_cast<double>(len);
    }
  }
  return best;
}

SeriesStats series_stats(const char* name, const std::vector<const TimelineSampleRow*>& rows,
                         double (*get)(const TimelineSampleRow&)) {
  SeriesStats st;
  st.name = name;
  double sum = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double v = get(*rows[i]);
    sum += v;
    if (i == 0 || v < st.min) {
      st.min = v;
      st.min_t = rows[i]->t;
    }
    if (i == 0 || v > st.max) {
      st.max = v;
      st.max_t = rows[i]->t;
    }
  }
  st.mean = rows.empty() ? 0.0 : sum / static_cast<double>(rows.size());
  double var = 0.0;
  for (const TimelineSampleRow* r : rows) {
    const double d = get(*r) - st.mean;
    var += d * d;
  }
  st.stddev = rows.empty() ? 0.0 : std::sqrt(var / static_cast<double>(rows.size()));
  if (st.stddev > 0.0) {
    const double band = 3.0 * st.stddev;
    std::size_t extra = 0;
    for (const TimelineSampleRow* r : rows) {
      const double v = get(*r);
      if (std::abs(v - st.mean) <= band) continue;
      if (st.anomalies.size() < 5) {
        st.anomalies.push_back("t=" + fmt(r->t) + ": " + fmt(v) + " (3-sigma band [" +
                               fmt(st.mean - band) + ", " + fmt(st.mean + band) + "])");
      } else {
        ++extra;
      }
    }
    if (extra > 0) st.anomalies.push_back("… and " + std::to_string(extra) + " more");
  }
  return st;
}

}  // namespace

TimelineAnalysis analyze_timeline(const TimelineData& data, double steady_tol,
                                  std::size_t window) {
  TimelineAnalysis a;
  a.bench = data.bench;
  a.seed = data.seed;
  a.quick = data.quick;

  std::map<std::uint64_t, std::vector<const TimelineSampleRow*>> by_run;
  for (const TimelineSampleRow& s : data.samples) by_run[s.run].push_back(&s);

  for (const auto& [run, rows] : by_run) {
    RunTimeline rt;
    rt.run = run;
    if (const auto it = data.run_labels.find(run); it != data.run_labels.end()) {
      rt.label = it->second;
    }
    rt.samples = rows.size();
    rt.first_t = rows.front()->t;
    rt.last_t = rows.back()->t;
    rt.steady = find_steady(rows, steady_tol);

    using Getter = double (*)(const TimelineSampleRow&);
    static constexpr std::pair<const char*, Getter> kSeries[] = {
        {"events_per_s", [](const TimelineSampleRow& s) { return s.events_per_s; }},
        {"queue_depth",
         [](const TimelineSampleRow& s) { return static_cast<double>(s.queue_depth); }},
        {"live_probes",
         [](const TimelineSampleRow& s) { return static_cast<double>(s.live_probes); }},
        {"active_sessions",
         [](const TimelineSampleRow& s) { return static_cast<double>(s.active_sessions); }},
        {"success_rate", [](const TimelineSampleRow& s) { return s.success_rate; }},
        {"mean_phi", [](const TimelineSampleRow& s) { return s.mean_phi; }},
    };
    for (const auto& [name, get] : kSeries) rt.series.push_back(series_stats(name, rows, get));

    std::size_t w = window;
    if (w == 0) w = std::max<std::size_t>(1, rows.size() / 12);
    for (std::size_t start = 0; start < rows.size(); start += w) {
      const std::size_t end = std::min(start + w, rows.size());
      WindowRate wr;
      wr.start_t = rows[start]->t;
      wr.end_t = rows[end - 1]->t;
      wr.samples = end - start;
      for (std::size_t k = start; k < end; ++k) {
        wr.mean_events_per_s += rows[k]->events_per_s;
        wr.mean_queue_depth += static_cast<double>(rows[k]->queue_depth);
        wr.max_queue_depth = std::max(wr.max_queue_depth, rows[k]->queue_depth);
      }
      wr.mean_events_per_s /= static_cast<double>(wr.samples);
      wr.mean_queue_depth /= static_cast<double>(wr.samples);
      rt.windows.push_back(wr);
    }
    a.runs.push_back(std::move(rt));
  }
  return a;
}

void write_timeline_analysis(std::ostream& os, const TimelineAnalysis& a) {
  os << "timeline: " << a.bench << " (seed " << a.seed << (a.quick ? ", quick" : "") << ")\n";
  for (const RunTimeline& rt : a.runs) {
    os << "\nrun " << rt.run;
    if (!rt.label.empty()) os << " [" << rt.label << "]";
    os << ": " << rt.samples << " samples, t " << rt.first_t << " → " << rt.last_t << " s\n";
    if (rt.steady.found) {
      os << "  steady state: t " << rt.steady.start_t << " → " << rt.steady.end_t << " s ("
         << rt.steady.samples << " samples, " << rt.steady.mean_events_per_s
         << " events/s sim)\n";
    } else {
      os << "  steady state: none (no window of >= 3 samples within tolerance)\n";
    }
    os << "  series (min@t / mean ± stddev / max@t):\n";
    for (const SeriesStats& st : rt.series) {
      os << "    " << st.name << ": " << st.min << " @t=" << st.min_t << " / " << st.mean
         << " ± " << st.stddev << " / " << st.max << " @t=" << st.max_t << "\n";
    }
    os << "  windows:\n";
    for (const WindowRate& wr : rt.windows) {
      os << "    t " << wr.start_t << " → " << wr.end_t << " s: " << wr.mean_events_per_s
         << " events/s, queue " << wr.mean_queue_depth << " mean / " << wr.max_queue_depth
         << " max\n";
    }
    bool any_anomaly = false;
    for (const SeriesStats& st : rt.series) {
      for (const std::string& an : st.anomalies) {
        if (!any_anomaly) os << "  anomalies:\n";
        any_anomaly = true;
        os << "    " << st.name << " " << an << "\n";
      }
    }
  }
}

// ---- timeline diff --------------------------------------------------------------

DiffResult diff_timelines(const TimelineData& base, const TimelineData& current) {
  DiffResult res;
  if (base.schema != current.schema) {
    res.regressions.push_back("sim not identical: schema " + base.schema + " vs " +
                              current.schema);
  }
  if (base.bench != current.bench) {
    res.notes.push_back("comparing different benches: " + base.bench + " vs " + current.bench);
  }
  if (base.seed != current.seed) {
    res.regressions.push_back("sim not identical: seed " + std::to_string(base.seed) + " vs " +
                              std::to_string(current.seed));
  }
  if (base.quick != current.quick) {
    res.regressions.push_back(std::string("sim not identical: quick ") +
                              (base.quick ? "true" : "false") + " vs " +
                              (current.quick ? "true" : "false"));
  }
  if (base.git_sha != current.git_sha) {
    res.notes.push_back("git_sha differs: " + base.git_sha + " vs " + current.git_sha +
                        " (header identity is field-wise; sha is informational)");
  }
  const std::size_t n = std::min(base.sim_lines.size(), current.sim_lines.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (base.sim_lines[i] != current.sim_lines[i]) {
      // Everything after the first divergence is usually offset noise, so
      // report only where the streams fork.
      res.regressions.push_back("sim not identical: deterministic row " + std::to_string(i + 1) +
                                " diverges\n  base:    " + base.sim_lines[i] +
                                "\n  current: " + current.sim_lines[i]);
      break;
    }
  }
  if (base.sim_lines.size() != current.sim_lines.size()) {
    res.regressions.push_back(
        "sim not identical: " + std::to_string(base.sim_lines.size()) + " vs " +
        std::to_string(current.sim_lines.size()) + " deterministic rows");
  }
  return res;
}

void write_timeline_diff(std::ostream& os, const TimelineData& base,
                         const TimelineData& current, const DiffResult& result) {
  os << "timeline: " << current.bench << "  (base " << base.git_sha << " → current "
     << current.git_sha << ")\n";
  os << "deterministic rows: " << base.sim_lines.size() << " vs " << current.sim_lines.size()
     << ", host rows (exempt): " << base.host_samples.size() << " vs "
     << current.host_samples.size() << "\n";
  for (const std::string& n : result.notes) os << "note: " << n << "\n";
  if (result.ok()) {
    os << "OK: deterministic timeline rows identical\n";
  } else {
    for (const std::string& r : result.regressions) os << "REGRESSION: " << r << "\n";
  }
}

// ---- explain: one request's causal span tree -----------------------------------

namespace {

/// Probe ids on the request's critical path — the same selection rule
/// analyze() uses: the latest-completing returned probe (the one the
/// deputy's merge actually waited on), else the latest-ending probe, plus
/// its causal ancestry back to the root.
std::set<std::uint64_t> critical_probe_set(const ReqInfo& r) {
  std::uint64_t leaf = 0;
  bool leaf_returned = false;
  double leaf_t = -1.0;
  for (const auto& [id, p] : r.probes) {
    const bool better =
        (p.returned && !leaf_returned) || (p.returned == leaf_returned && p.end_t > leaf_t);
    if (leaf == 0 || better) {
      leaf = id;
      leaf_returned = p.returned;
      leaf_t = p.end_t;
    }
  }
  std::set<std::uint64_t> on_path;
  std::uint64_t cursor = leaf;
  while (cursor != 0 && on_path.size() <= r.probes.size()) {
    if (r.probes.count(cursor) == 0 || !on_path.insert(cursor).second) break;
    cursor = r.probes.at(cursor).parent;
  }
  return on_path;
}

/// Children of each probe (and the roots), in spawn order — probe ids are
/// allocated monotonically, so id order IS spawn order.
struct ProbeTree {
  std::map<std::uint64_t, std::vector<std::uint64_t>> children;
  std::vector<std::uint64_t> roots;
};

ProbeTree probe_tree(const ReqInfo& r) {
  ProbeTree t;
  for (const auto& [id, p] : r.probes) {
    if (p.parent != 0 && r.probes.count(p.parent) > 0) {
      t.children[p.parent].push_back(id);
    } else {
      t.roots.push_back(id);
    }
  }
  return t;
}

void render_probe_line(std::ostream& os, const ReqInfo& r, std::uint64_t id,
                       const std::set<std::uint64_t>& critical, const ProbeTree& tree,
                       std::size_t depth, std::set<std::uint64_t>& visited) {
  if (!visited.insert(id).second) return;  // corrupt input could cycle
  const ProbeInfo& p = r.probes.at(id);

  os << "  " << std::string(2 * depth, ' ') << (critical.count(id) > 0 ? "* " : "  ");
  os << "probe " << id << "  node " << p.node << "  hop " << p.hop << "  path " << p.path;
  if (p.component >= 0) os << "  comp " << p.component;
  os << "  t " << fmt(p.spawn_t) << "→" << fmt(p.end_t) << " ("
     << fmt((p.end_t - p.spawn_t) * 1e3) << " ms)";
  const auto kids = tree.children.find(id);
  const std::size_t n_kids = kids == tree.children.end() ? 0 : kids->second.size();
  switch (p.end) {
    case ProbeInfo::End::kFork: os << "  forked " << n_kids; break;
    case ProbeInfo::End::kReturned: os << "  returned"; break;
    case ProbeInfo::End::kRejected:
      os << "  rejected: " << p.reason;
      if (p.moved_component >= 0) os << " (component " << p.moved_component << ")";
      break;
    case ProbeInfo::End::kNone: os << "  outstanding"; break;
  }
  if (p.retries > 0) os << "  [" << p.retries << " retr" << (p.retries == 1 ? "y" : "ies") << "]";
  os << "\n";

  if (kids == tree.children.end()) return;
  for (const std::uint64_t child : kids->second) {
    render_probe_line(os, r, child, critical, tree, depth + 1, visited);
  }
}

void render_request(std::ostream& os, const ReqKey& key, const ReqInfo& r) {
  os << "run " << key.first << " req " << key.second << ": ";
  if (!r.terminal) {
    os << "UNTERMINATED (trace cut short?)";
  } else if (r.confirmed) {
    os << "CONFIRMED  session " << r.session << "  phi " << fmt(r.phi);
  } else {
    os << "FAILED" << (r.timed_out ? " (probe timeout)" : " (no qualified composition)");
  }
  os << "\n";
  os << "  deputy node " << r.deputy << ", " << r.paths << " path"
     << (r.paths == 1 ? "" : "s") << ", alpha " << fmt(r.alpha) << "\n";
  os << "  t " << fmt(r.accepted_t) << " → " << fmt(r.end_t) << "  setup " << fmt(r.setup_s)
     << " s\n";
  os << "  probes: " << r.spawns << " spawned = " << r.forks << " forked + " << r.returns
     << " returned + " << r.rejects << " rejected";
  if (r.timed_out) {
    os << " + " << static_cast<std::uint64_t>(r.timeout_outstanding) << " outstanding at timeout";
  }
  if (r.retries > 0) os << "; " << r.retries << " retransmissions";
  os << "\n";

  const std::set<std::uint64_t> critical = critical_probe_set(r);
  const ProbeTree tree = probe_tree(r);
  os << "  span tree (indent = spawned-by; * = critical path):\n";
  std::set<std::uint64_t> visited;
  for (const std::uint64_t root : tree.roots) {
    render_probe_line(os, r, root, critical, tree, 0, visited);
  }

  if (r.terminal && !r.confirmed && !r.reject_reasons.empty()) {
    os << "  failure reasons (" << r.rejects << " rejected probes):\n";
    for (const auto& [reason, n] : r.reject_reasons) {
      os << "    " << reason << "  " << n << "\n";
    }
  }
}

}  // namespace

std::size_t explain(std::ostream& os, const TraceData& trace, const ExplainQuery& q) {
  const std::map<ReqKey, ReqInfo> reqs = reconstruct(trace, nullptr);
  std::size_t matched = 0;
  for (const auto& [key, r] : reqs) {
    if (q.run != 0 && key.first != q.run) continue;
    if (q.by_session) {
      if (!r.confirmed || r.session != q.id) continue;
    } else {
      if (key.second != q.id) continue;
    }
    if (matched > 0) os << "\n";
    ++matched;
    render_request(os, key, r);
  }
  if (matched > 0 && trace.truncated) {
    os << "NOTE: trace is truncated (abnormal writer exit)\n";
  }
  return matched;
}

// ---- export: Chrome-trace / folded-stack span dumps ----------------------------

namespace {

/// run index → algorithm label, from run_started markers.
std::map<std::uint64_t, std::string> run_labels(const TraceData& trace) {
  std::map<std::uint64_t, std::string> labels;
  for (const auto& ev : trace.events) {
    if (ev.str("type") == "run_started") {
      labels[static_cast<std::uint64_t>(ev.num("run"))] =
          ev.has("label") ? ev.str("label") : "";
    }
  }
  return labels;
}

/// Latest event time attributable to the request — terminal requests can
/// still have probes settling afterwards (timeout path), and truncated
/// traces have no terminal at all; the enclosing Chrome span must cover
/// every child span either way.
double request_span_end(const ReqInfo& r) {
  double end = r.terminal ? r.end_t : r.accepted_t;
  for (const auto& [id, p] : r.probes) end = std::max(end, p.end_t);
  return end;
}

const char* request_state(const ReqInfo& r) {
  if (!r.terminal) return "unterminated";
  return r.confirmed ? "confirmed" : "failed";
}

}  // namespace

ExportStats export_chrome_trace(std::ostream& os, const TraceData& trace) {
  const std::map<ReqKey, ReqInfo> reqs = reconstruct(trace, nullptr);
  const std::map<std::uint64_t, std::string> labels = run_labels(trace);

  ExportStats st;
  os << "{\"traceEvents\": [";
  bool first = true;
  const auto emit = [&os, &first](const std::string& line) {
    os << (first ? "\n" : ",\n") << line;
    first = false;
  };

  for (const auto& [run, label] : labels) {
    emit("{\"ph\": \"M\", \"pid\": " + std::to_string(run) +
         ", \"name\": \"process_name\", \"args\": {\"name\": \"run " + std::to_string(run) +
         " " + obs::json_escape(label) + "\"}}");
  }

  for (const auto& [key, r] : reqs) {
    if (!r.accepted) continue;
    const std::string pid = std::to_string(key.first);
    const std::string tid = std::to_string(key.second);
    ++st.requests;
    emit("{\"ph\": \"X\", \"pid\": " + pid + ", \"tid\": " + tid + ", \"ts\": " +
         obs::json_number(r.accepted_t * 1e6) + ", \"dur\": " +
         obs::json_number((request_span_end(r) - r.accepted_t) * 1e6) + ", \"name\": \"req " +
         tid + " " + request_state(r) + "\", \"cat\": \"request\", \"args\": {\"session\": " +
         std::to_string(r.session) + ", \"phi\": " + obs::json_number(r.phi) +
         ", \"setup_s\": " + obs::json_number(r.setup_s) + ", \"probes\": " +
         std::to_string(r.spawns) + ", \"deputy\": " + std::to_string(r.deputy) + "}}");

    for (const auto& [id, p] : r.probes) {
      ++st.probe_spans;
      std::string line = "{\"ph\": \"X\", \"pid\": " + pid + ", \"tid\": " + tid +
                         ", \"ts\": " + obs::json_number(p.spawn_t * 1e6) + ", \"dur\": " +
                         obs::json_number((p.end_t - p.spawn_t) * 1e6) + ", \"name\": \"probe " +
                         std::to_string(id) + " @node " + std::to_string(p.node) +
                         "\", \"cat\": \"probe\", \"args\": {\"probe\": " + std::to_string(id) +
                         ", \"parent\": " + std::to_string(p.parent) + ", \"hop\": " +
                         std::to_string(p.hop) + ", \"path\": " + std::to_string(p.path) +
                         ", \"node\": " + std::to_string(p.node) + ", \"disposition\": \"" +
                         disposition_name(p.end) + "\"";
      if (!p.reason.empty()) line += ", \"reason\": \"" + obs::json_escape(p.reason) + "\"";
      if (p.component >= 0) line += ", \"component\": " + std::to_string(p.component);
      if (p.retries > 0) line += ", \"retries\": " + std::to_string(p.retries);
      line += "}}";
      emit(line);
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return st;
}

ExportStats export_folded_stacks(std::ostream& os, const TraceData& trace) {
  const std::map<ReqKey, ReqInfo> reqs = reconstruct(trace, nullptr);

  // Aggregate across requests: the stack is the overlay-node chain along
  // the probe's causal ancestry, the weight the probe's OWN span (a forking
  // probe ends where its children spawn, so self-time is already exclusive
  // and the per-run weights sum to total probe-seconds).
  std::map<std::string, std::uint64_t> agg;
  ExportStats st;
  for (const auto& [key, r] : reqs) {
    for (const auto& [id, p] : r.probes) {
      const auto weight =
          static_cast<std::uint64_t>(std::llround(std::max(0.0, p.end_t - p.spawn_t) * 1e6));
      if (weight == 0) continue;
      std::vector<std::uint64_t> chain;  // self → root
      std::uint64_t cursor = id;
      while (cursor != 0 && chain.size() <= r.probes.size()) {
        const auto it = r.probes.find(cursor);
        if (it == r.probes.end()) break;
        chain.push_back(it->second.node);
        cursor = it->second.parent;
      }
      std::string stack = "run" + std::to_string(key.first);
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        stack += ";node" + std::to_string(*it);
      }
      agg[stack] += weight;
      ++st.probe_spans;
    }
  }
  for (const auto& [stack, weight] : agg) {
    os << stack << " " << weight << "\n";
    ++st.stacks;
  }
  return st;
}

// ---- attribution artifacts ------------------------------------------------------

AttrDoc load_attribution(std::istream& in) {
  AttrDoc d;
  std::string line;
  bool saw_header = false;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = parse_json(line);
    } catch (const std::exception& e) {
      throw PreconditionError("attribution line " + std::to_string(line_no) + ": " + e.what());
    }
    const std::string type = v.str_or("type", "");
    if (!saw_header) {
      const std::string schema = v.str_or("schema", "");
      if (type != "header" || schema != "acp-attr/1") {
        throw PreconditionError("not an acp-attr/1 artifact (first line type \"" + type +
                                "\", schema \"" + schema + "\")");
      }
      d.schema = schema;
      d.bench = v.str_or("bench", "");
      d.git_sha = v.str_or("git_sha", "");
      d.seed = static_cast<std::uint64_t>(v.num_or("seed", 0.0));
      const JsonValue* quick = v.find("quick");
      d.quick = quick != nullptr && quick->boolean;
      saw_header = true;
      continue;
    }
    if (type == "attr") {
      AttrDoc::Row r;
      r.phase = v.str_or("phase", "?");
      r.node = static_cast<std::int64_t>(v.num_or("node", -1.0));
      r.fn = static_cast<std::int64_t>(v.num_or("fn", -1.0));
      r.count = static_cast<std::uint64_t>(v.num_or("count", 0.0));
      r.sim_s = v.num_or("sim_s", 0.0);
      d.rows.push_back(std::move(r));
    } else if (type == "attr_wait") {
      AttrDoc::Wait w;
      w.kind = v.str_or("kind", "?");
      w.count = static_cast<std::uint64_t>(v.num_or("count", 0.0));
      w.sim_s = v.num_or("sim_s", 0.0);
      d.waits.push_back(std::move(w));
    } else if (type == "attr_host") {
      AttrDoc::Host h;
      h.phase = v.str_or("phase", "?");
      h.node = static_cast<std::int64_t>(v.num_or("node", -1.0));
      h.count = static_cast<std::uint64_t>(v.num_or("count", 0.0));
      h.wall_s = v.num_or("wall_s", 0.0);
      d.host.push_back(std::move(h));
    } else if (type == "attr_total") {
      d.total_count = static_cast<std::uint64_t>(v.num_or("count", 0.0));
      d.total_sim_s = v.num_or("sim_s", 0.0);
    }
    // Unknown row types within the schema are skipped (forward compat).
  }
  if (!saw_header) throw PreconditionError("empty attribution artifact (no header line)");
  return d;
}

AttrDoc load_attribution_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw PreconditionError("cannot open attribution artifact: " + path);
  return load_attribution(in);
}

ExportStats export_attribution_folded(std::ostream& os, const AttrDoc& attr) {
  ExportStats st;
  for (const AttrDoc::Row& r : attr.rows) {
    // sim-µs weight; phases that charge no sim time (rank) fall back to the
    // occurrence count so their fan-out is still visible in the graph.
    const auto weight = static_cast<std::uint64_t>(
        r.sim_s > 0.0 ? std::llround(r.sim_s * 1e6) : static_cast<long long>(r.count));
    if (weight == 0) continue;
    os << "attr;" << r.phase << ";node" << r.node;
    if (r.fn >= 0) os << ";fn" << r.fn;
    os << " " << weight << "\n";
    ++st.stacks;
  }
  return st;
}

// ---- reconcile: attribution vs BENCH profiler scopes ----------------------------

namespace {

struct PhaseScope {
  const char* phase;
  const char* scope;
};

/// Phases whose AttrWallScope sits at the same call site as a ProfScope —
/// the pairs reconcile_attribution can hold to exact-count agreement.
constexpr PhaseScope kPhaseScopes[] = {
    {"probe", "probing.process_probe"},
    {"rank", "probing.rank_candidates"},
    {"finalize", "probing.finalize"},
};

}  // namespace

DiffResult reconcile_attribution(const AttrDoc& attr, const BenchDoc& bench,
                                 double max_wall_ratio) {
  DiffResult res;
  if (!attr.bench.empty() && !bench.name.empty() && attr.bench != bench.name) {
    res.notes.push_back("comparing different benches: " + attr.bench + " vs " + bench.name);
  }
  if (attr.rows.empty()) {
    res.regressions.push_back("attribution artifact has no deterministic attr rows");
  }

  std::map<std::string, std::pair<std::uint64_t, double>> host;  // phase → (count, wall_s)
  for (const AttrDoc::Host& h : attr.host) {
    host[h.phase].first += h.count;
    host[h.phase].second += h.wall_s;
  }

  for (const PhaseScope& ps : kPhaseScopes) {
    const auto sc = bench.scopes.find(ps.scope);
    const auto at = host.find(ps.phase);
    const std::uint64_t scope_count = sc == bench.scopes.end() ? 0 : sc->second.count;
    const std::uint64_t attr_count = at == host.end() ? 0 : at->second.first;
    if (scope_count == 0 && attr_count == 0) {
      res.notes.push_back(std::string(ps.phase) + ": absent on both sides (skipped)");
      continue;
    }
    if (attr_count != scope_count) {
      res.regressions.push_back(std::string(ps.phase) + ": attribution counted " +
                                std::to_string(attr_count) + " but scope " + ps.scope +
                                " counted " + std::to_string(scope_count));
      continue;
    }
    const double scope_s = sc->second.total_s;
    const double attr_s = at->second.second;
    // Wall clocks of adjacent RAII scopes agree up to instrumentation
    // overhead — ratio-gate, and skip scopes too cheap to time reliably.
    if (scope_s >= 0.005 && attr_s > 0.0) {
      const double ratio = std::max(attr_s / scope_s, scope_s / attr_s);
      if (ratio > max_wall_ratio) {
        res.regressions.push_back(std::string(ps.phase) + ": wall disagrees with " + ps.scope +
                                  ": " + fmt(attr_s) + " s vs " + fmt(scope_s) + " s (ratio " +
                                  fmt(ratio) + " > " + fmt(max_wall_ratio) + ")");
        continue;
      }
    }
    res.notes.push_back(std::string(ps.phase) + ": " + std::to_string(attr_count) +
                        " occurrences, wall " + fmt(attr_s) + " s vs scope " + fmt(scope_s) +
                        " s — reconciled");
  }
  return res;
}

void write_reconcile(std::ostream& os, const AttrDoc& attr, const BenchDoc& bench,
                     const DiffResult& result) {
  os << "reconcile: " << attr.bench << " (seed " << attr.seed << ") vs BENCH " << bench.name
     << "\n";
  os << "attribution: " << attr.rows.size() << " attr rows, " << attr.waits.size()
     << " wait rows, " << attr.host.size() << " host rows\n";
  for (const std::string& n : result.notes) os << "note: " << n << "\n";
  if (result.ok()) {
    os << "OK: attribution reconciles with profiler scopes\n";
  } else {
    for (const std::string& r : result.regressions) os << "REGRESSION: " << r << "\n";
  }
}

}  // namespace acp::tracecli
