// acptrace — offline analyzer for the repo's perf/trace artifacts.
//
// Consumes the two artifact kinds the observability layer produces:
//
//   * probe-lifecycle JSONL traces (obs/trace.h, --trace-out) — re-assembles
//     per-request span trees, computes critical-path / per-hop latency
//     breakdowns (`analyze`), and checks span invariants (`validate`):
//     every hop/reject/return/retry must reference an earlier spawn, each
//     probe gets exactly one disposition (fork, return, reject, or
//     outstanding at timeout) — a probe_retry span is a retransmission of
//     the SAME in-flight probe, never a second disposition — and per-request
//     accounting must balance.
//
//   * BENCH_<name>.json perf reports (obs/bench_report.h, --bench-out) —
//     `diff` compares a current report against a baseline and flags
//     regressions against configurable thresholds; CI runs it as the
//     perf-smoke gate with baselines from bench/baselines/.
//
// The library is UI-free (no printing, no exit codes) so tests can drive it
// directly; tools/acptrace/main.cpp adds the CLI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace acp::tracecli {

// ---- Minimal JSON document parser (for BENCH_*.json) ------------------------

/// Recursive JSON value. Small and allocation-happy — these documents are a
/// few KB; clarity beats speed here (the hot-path format is JSONL, parsed
/// by obs::parse_trace_line instead).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Convenience accessors returning a fallback when absent/mistyped.
  double num_or(const std::string& key, double fallback) const;
  std::string str_or(const std::string& key, const std::string& fallback) const;
};

/// Parses one complete JSON document. Throws PreconditionError on malformed
/// input or trailing garbage.
JsonValue parse_json(const std::string& text);

// ---- Trace loading ----------------------------------------------------------

struct TraceData {
  std::vector<obs::ParsedTraceEvent> events;  ///< in file order
  bool truncated = false;   ///< a trace_truncated marker was present
  std::uint64_t lines = 0;  ///< total non-empty lines parsed
};

/// Reads a JSONL trace stream. Throws PreconditionError on a malformed line.
TraceData load_trace(std::istream& in);
TraceData load_trace_file(const std::string& path);

// ---- analyze: critical paths & hop latencies --------------------------------

struct HopTiming {
  std::uint64_t probe = 0;
  std::uint64_t node = 0;
  std::uint64_t hop = 0;       ///< depth along the path (0 = deputy root)
  double spawn_t = 0.0;        ///< sim time the probe was spawned
  double end_t = 0.0;          ///< sim time of its hop/terminal event
  double latency_s = 0.0;      ///< end_t - spawn_t (transit + processing)
};

/// One request's reconstructed composition timeline: the chain of probes
/// from the deputy to the probe whose return completed latest (the
/// critical path — the chain the setup time waited on).
struct RequestPath {
  std::uint64_t run = 0;
  std::uint64_t req = 0;
  bool confirmed = false;
  bool timed_out = false;
  double accepted_t = 0.0;
  double end_t = 0.0;          ///< confirmed/failed event time
  double setup_s = 0.0;        ///< end_t - accepted_t
  std::uint64_t probes_spawned = 0;
  std::vector<HopTiming> critical_path;  ///< root → leaf order
};

struct Analysis {
  std::uint64_t requests = 0;
  std::uint64_t confirmed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t probes_spawned = 0;
  std::uint64_t probe_retries = 0;  ///< retransmissions of lost hops (fault runs)
  double mean_setup_s = 0.0;
  double max_setup_s = 0.0;
  bool truncated = false;
  std::vector<RequestPath> slowest;  ///< top-K by setup time, descending
};

Analysis analyze(const TraceData& trace, std::size_t top_k = 5);
void write_analysis(std::ostream& os, const Analysis& a);

// ---- validate: span invariants -----------------------------------------------

struct Violation {
  std::string what;  ///< human-readable, one line
};

/// Checks the span invariants described in the file header. A truncated
/// trace (trace_truncated marker) downgrades end-of-stream *balance*
/// violations — the cut can legitimately hide terminals — but referencing
/// a never-spawned probe is a violation regardless.
std::vector<Violation> validate(const TraceData& trace);

// ---- diff: bench-report regression gate ---------------------------------------

/// One BENCH_<name>.json, decoded into the fields diff compares.
struct BenchDoc {
  std::string name;
  std::string git_sha;
  double wall_s = 0.0;
  std::uint64_t jobs = 1;  ///< worker-pool width ("jobs" field; 1 pre-PR-5)
  double success_rate = 0.0;
  double overhead_per_minute = 0.0;
  double mean_phi = 0.0;
  std::uint64_t runs = 0;
  struct Scope {
    double total_s = 0.0;
    double mean_s = 0.0;
    double p99_s = 0.0;
  };
  std::map<std::string, Scope> scopes;
  /// Counter family totals — deterministic sim observables, used by the
  /// require_identical_sim gate. Empty for documents without the section.
  std::map<std::string, std::uint64_t> counters;
};

/// Decodes a parsed acp-bench/1 document; throws PreconditionError when the
/// schema marker is missing or wrong.
BenchDoc decode_bench(const JsonValue& doc);
BenchDoc load_bench_file(const std::string& path);

struct DiffThresholds {
  // Wall-clock gates are ratio-based and should be loose in CI (shared
  // runners jitter); the defaults suit a quiet local machine.
  double max_wall_ratio = 1.5;    ///< current.wall_s / base.wall_s
  double max_scope_ratio = 1.8;   ///< per-scope mean_s ratio (2× slowdown flags)
  double min_scope_total_s = 0.005;  ///< ignore scopes cheaper than this in base
  // Sim-metric gates compare deterministic outputs: same seed ⇒ identical,
  // so these stay tight everywhere.
  double max_success_drop = 0.02;    ///< absolute drop in success_rate
  double max_overhead_ratio = 1.10;  ///< probing overhead growth
  double max_phi_ratio = 1.10;       ///< mean φ(λ) growth
  /// Jobs-invariance mode: every deterministic sim observable (headline
  /// metrics, run count, counter totals) must match the baseline EXACTLY —
  /// any difference is a regression. Wall-clock fields stay ratio-gated.
  /// Used by CI to prove --jobs N never changes simulation results.
  bool require_identical_sim = false;
};

struct DiffResult {
  std::vector<std::string> regressions;  ///< threshold breaches (fail)
  std::vector<std::string> notes;        ///< informational deltas
  bool ok() const { return regressions.empty(); }
};

DiffResult diff(const BenchDoc& base, const BenchDoc& current, const DiffThresholds& th);
void write_diff(std::ostream& os, const BenchDoc& base, const BenchDoc& current,
                const DiffResult& result);

}  // namespace acp::tracecli
