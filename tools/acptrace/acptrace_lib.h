// acptrace — offline analyzer for the repo's perf/trace artifacts.
//
// Consumes the two artifact kinds the observability layer produces:
//
//   * probe-lifecycle JSONL traces (obs/trace.h, --trace-out) — re-assembles
//     per-request span trees, computes critical-path / per-hop latency
//     breakdowns (`analyze`), and checks span invariants (`validate`):
//     every hop/reject/return/retry must reference an earlier spawn, each
//     probe gets exactly one disposition (fork, return, reject, or
//     outstanding at timeout) — a probe_retry span is a retransmission of
//     the SAME in-flight probe, never a second disposition — and per-request
//     accounting must balance.
//
//   * BENCH_<name>.json perf reports (obs/bench_report.h, --bench-out) —
//     `diff` compares a current report against a baseline and flags
//     regressions against configurable thresholds; CI runs it as the
//     perf-smoke gate with baselines from bench/baselines/.
//
//   * sim-time timeline telemetry JSONL (obs/timeline.h, --timeline-out) —
//     `timeline` summarizes each run's series (window rates, per-series
//     min/max/anomalies, steady-state detection); `diff` on two timeline
//     files runs the jobs-invariance identity gate over the deterministic
//     rows (host_sample rows exempt).
//
// The library is UI-free (no printing, no exit codes) so tests can drive it
// directly; tools/acptrace/main.cpp adds the CLI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace acp::tracecli {

// ---- Minimal JSON document parser (for BENCH_*.json) ------------------------

/// Recursive JSON value. Small and allocation-happy — these documents are a
/// few KB; clarity beats speed here (the hot-path format is JSONL, parsed
/// by obs::parse_trace_line instead).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Convenience accessors returning a fallback when absent/mistyped.
  double num_or(const std::string& key, double fallback) const;
  std::string str_or(const std::string& key, const std::string& fallback) const;
};

/// Parses one complete JSON document. Throws PreconditionError on malformed
/// input or trailing garbage.
JsonValue parse_json(const std::string& text);

// ---- Trace loading ----------------------------------------------------------

struct TraceData {
  std::vector<obs::ParsedTraceEvent> events;  ///< in file order
  bool truncated = false;   ///< a trace_truncated marker was present
  std::uint64_t lines = 0;  ///< total non-empty lines parsed
};

/// Reads a JSONL trace stream. Throws PreconditionError on a malformed line.
TraceData load_trace(std::istream& in);
TraceData load_trace_file(const std::string& path);

// ---- analyze: critical paths & hop latencies --------------------------------

struct HopTiming {
  std::uint64_t probe = 0;
  std::uint64_t node = 0;
  std::uint64_t hop = 0;       ///< depth along the path (0 = deputy root)
  double spawn_t = 0.0;        ///< sim time the probe was spawned
  double end_t = 0.0;          ///< sim time of its hop/terminal event
  double latency_s = 0.0;      ///< end_t - spawn_t (transit + processing)
};

/// One request's reconstructed composition timeline: the chain of probes
/// from the deputy to the probe whose return completed latest (the
/// critical path — the chain the setup time waited on).
struct RequestPath {
  std::uint64_t run = 0;
  std::uint64_t req = 0;
  bool confirmed = false;
  bool timed_out = false;
  double accepted_t = 0.0;
  double end_t = 0.0;          ///< confirmed/failed event time
  double setup_s = 0.0;        ///< end_t - accepted_t
  std::uint64_t probes_spawned = 0;
  std::vector<HopTiming> critical_path;  ///< root → leaf order
};

struct Analysis {
  std::uint64_t requests = 0;
  std::uint64_t confirmed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t probes_spawned = 0;
  std::uint64_t probe_retries = 0;  ///< retransmissions of lost hops (fault runs)
  double mean_setup_s = 0.0;
  double max_setup_s = 0.0;
  bool truncated = false;
  std::vector<RequestPath> slowest;  ///< top-K by setup time, descending
};

Analysis analyze(const TraceData& trace, std::size_t top_k = 5);
void write_analysis(std::ostream& os, const Analysis& a);

// ---- validate: span invariants -----------------------------------------------

struct Violation {
  std::string what;  ///< human-readable, one line
};

/// Checks the span invariants described in the file header. A truncated
/// trace (trace_truncated marker) downgrades end-of-stream *balance*
/// violations — the cut can legitimately hide terminals — but referencing
/// a never-spawned probe is a violation regardless.
std::vector<Violation> validate(const TraceData& trace);

// ---- diff: bench-report regression gate ---------------------------------------

/// One BENCH_<name>.json, decoded into the fields diff compares.
struct BenchDoc {
  std::string schema;  ///< "acp-bench/1" or "acp-bench/2"
  std::string name;
  std::string git_sha;
  std::string host;  ///< machine the bench ran on; empty in v1 documents
  double wall_s = 0.0;
  std::uint64_t jobs = 1;  ///< worker-pool width ("jobs" field; 1 pre-PR-5)
  double success_rate = 0.0;
  double overhead_per_minute = 0.0;
  double mean_phi = 0.0;
  std::uint64_t runs = 0;
  // Host-headline metrics (v2); zero when the document predates them.
  double events_per_sec = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  struct Scope {
    std::uint64_t count = 0;
    double total_s = 0.0;
    double mean_s = 0.0;
    double p99_s = 0.0;
  };
  std::map<std::string, Scope> scopes;
  /// Counter family totals — deterministic sim observables, used by the
  /// require_identical_sim gate. Empty for documents without the section.
  std::map<std::string, std::uint64_t> counters;
};

/// Decodes a parsed acp-bench document — both schema versions (v1 reads
/// with the v2 fields zeroed/empty, so the new gates auto-skip against old
/// baselines). Throws PreconditionError when the schema marker is missing
/// or unknown.
BenchDoc decode_bench(const JsonValue& doc);
BenchDoc load_bench_file(const std::string& path);

struct DiffThresholds {
  // Wall-clock gates are ratio-based and should be loose in CI (shared
  // runners jitter); the defaults suit a quiet local machine.
  double max_wall_ratio = 1.5;    ///< current.wall_s / base.wall_s
  double max_scope_ratio = 1.8;   ///< per-scope mean_s ratio (2× slowdown flags)
  double min_scope_total_s = 0.005;  ///< ignore scopes cheaper than this in base
  // Sim-metric gates compare deterministic outputs: same seed ⇒ identical,
  // so these stay tight everywhere.
  double max_success_drop = 0.02;    ///< absolute drop in success_rate
  double max_overhead_ratio = 1.10;  ///< probing overhead growth
  double max_phi_ratio = 1.10;       ///< mean φ(λ) growth
  // Host-headline gates (bench schema v2). Applied only when both sides ran
  // on the SAME host with the SAME jobs width and both carry the field —
  // v1 baselines decode as zero, so these auto-skip against old reports.
  double min_events_rate_ratio = 0.67;  ///< floor on current/base events_per_sec
  double max_rss_ratio = 2.0;           ///< peak_rss_bytes growth
  /// Jobs-invariance mode: every deterministic sim observable (headline
  /// metrics, run count, counter totals) must match the baseline EXACTLY —
  /// any difference is a regression. Wall-clock fields stay ratio-gated.
  /// Used by CI to prove --jobs N never changes simulation results.
  bool require_identical_sim = false;
};

struct DiffResult {
  std::vector<std::string> regressions;  ///< threshold breaches (fail)
  std::vector<std::string> notes;        ///< informational deltas
  bool ok() const { return regressions.empty(); }
};

DiffResult diff(const BenchDoc& base, const BenchDoc& current, const DiffThresholds& th);
void write_diff(std::ostream& os, const BenchDoc& base, const BenchDoc& current,
                const DiffResult& result);

// ---- timeline: sim-time telemetry series --------------------------------------

/// One deterministic "sample" row of an acp-timeline stream (obs/timeline.h).
struct TimelineSampleRow {
  std::uint64_t run = 0;
  double t = 0.0;  ///< sim seconds
  std::uint64_t events = 0;
  double events_per_s = 0.0;  ///< sim rate since the previous sample
  std::uint64_t queue_depth = 0;
  std::uint64_t live_probes = 0;
  std::uint64_t active_sessions = 0;
  std::uint64_t requests = 0;
  std::uint64_t successes = 0;
  double success_rate = 0.0;
  double mean_phi = 0.0;
  std::uint64_t allocs = 0;
};

/// One "host_sample" row — wall-clock observables, exempt from identity gates.
struct TimelineHostRow {
  std::uint64_t run = 0;
  double t = 0.0;
  double wall_s = 0.0;
  std::uint64_t peak_rss_bytes = 0;
};

struct TimelineData {
  std::string schema;  ///< from the header row, e.g. "acp-timeline/1"
  std::string bench;
  std::string git_sha;
  std::uint64_t seed = 0;
  bool quick = false;
  std::map<std::uint64_t, std::string> run_labels;  ///< run index → algorithm label
  std::vector<TimelineSampleRow> samples;           ///< file order
  std::vector<TimelineHostRow> host_samples;
  /// run_start + sample lines verbatim, in file order. diff_timelines
  /// compares these byte-for-byte (the header is compared field-wise so a
  /// git_sha difference alone never trips the identity gate).
  std::vector<std::string> sim_lines;
  std::uint64_t lines = 0;  ///< total non-empty lines parsed
};

/// Reads an acp-timeline JSONL stream. Throws PreconditionError on a
/// malformed line or when the first row is not an acp-timeline header.
TimelineData load_timeline(std::istream& in);
TimelineData load_timeline_file(const std::string& path);

/// True when the file's first line carries an acp-timeline schema marker —
/// how `diff` picks timeline mode over bench-report mode. Never throws; an
/// unreadable file is simply not a timeline.
bool is_timeline_file(const std::string& path);

// ---- timeline analysis ----------------------------------------------------------

/// Summary of one numeric series within one run.
struct SeriesStats {
  std::string name;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min_t = 0.0;  ///< sim time of the minimum
  double max_t = 0.0;  ///< sim time of the maximum
  /// Samples outside the 3-sigma band, "t=<T>: <value>" (capped, see
  /// analyze_timeline). Empty when stddev is zero.
  std::vector<std::string> anomalies;
};

/// Longest contiguous stretch of samples whose events_per_s stays within
/// a relative tolerance of the window's own mean — the run's steady state.
struct SteadyWindow {
  bool found = false;  ///< a window of >= 3 samples existed
  double start_t = 0.0;
  double end_t = 0.0;
  double mean_events_per_s = 0.0;
  std::size_t samples = 0;
};

/// Aggregate over a fixed block of consecutive samples — the coarse
/// rate/queue profile the `timeline` subcommand prints.
struct WindowRate {
  double start_t = 0.0;
  double end_t = 0.0;
  std::size_t samples = 0;
  double mean_events_per_s = 0.0;
  double mean_queue_depth = 0.0;
  std::uint64_t max_queue_depth = 0;
};

struct RunTimeline {
  std::uint64_t run = 0;
  std::string label;  ///< from the run_start row
  std::size_t samples = 0;
  double first_t = 0.0;
  double last_t = 0.0;
  SteadyWindow steady;
  std::vector<SeriesStats> series;  ///< fixed order, see analyze_timeline
  std::vector<WindowRate> windows;
};

struct TimelineAnalysis {
  std::string bench;
  std::uint64_t seed = 0;
  bool quick = false;
  std::vector<RunTimeline> runs;  ///< ascending run index
};

/// Per-run series summaries. `steady_tol` is the relative band for
/// steady-state detection (0.1 = every sample within ±10% of the window
/// mean). `window` groups that many consecutive samples per WindowRate row;
/// 0 picks a size that yields roughly a dozen windows per run.
TimelineAnalysis analyze_timeline(const TimelineData& data, double steady_tol = 0.1,
                                  std::size_t window = 0);
void write_timeline_analysis(std::ostream& os, const TimelineAnalysis& a);

/// Jobs-invariance identity gate over two timeline streams: the headers
/// must agree on schema/bench/seed/quick and every deterministic row
/// (run_start, sample) must match byte-for-byte in order. host_sample rows
/// are exempt — they may differ freely across jobs widths and machines.
DiffResult diff_timelines(const TimelineData& base, const TimelineData& current);
void write_timeline_diff(std::ostream& os, const TimelineData& base,
                         const TimelineData& current, const DiffResult& result);

// ---- explain: one request's causal span tree -----------------------------------

struct ExplainQuery {
  bool by_session = false;  ///< `id` is a session id (joins composition_confirmed)
  std::uint64_t id = 0;     ///< request id (default) or session id
  std::uint64_t run = 0;    ///< restrict to one run index; 0 = all runs
};

/// Renders the full causal span tree of every request matching `q`: probes
/// indented under the probe whose fork spawned them, dispositions and
/// per-probe timings inline, critical-path members marked, and — for
/// unsuccessful requests — a reject-reason rollup explaining the failure.
/// Returns the number of matching requests (0 ⇒ nothing was rendered).
std::size_t explain(std::ostream& os, const TraceData& trace, const ExplainQuery& q);

// ---- export: Chrome-trace / folded-stack span dumps ----------------------------

struct ExportStats {
  std::uint64_t requests = 0;     ///< request spans emitted
  std::uint64_t probe_spans = 0;  ///< probe spans emitted
  std::uint64_t stacks = 0;       ///< folded-stack lines emitted
};

/// Chrome Trace Event Format JSON ({"traceEvents": [...]}), loadable by
/// Perfetto and chrome://tracing. One complete ("X") event per terminal
/// request (pid = run, tid = request id) and one per probe, nested by sim
/// time: every probe span lies within its request's span, and a forking
/// probe ends exactly where its children spawn. Timestamps are sim
/// microseconds. run_started labels become process_name metadata.
ExportStats export_chrome_trace(std::ostream& os, const TraceData& trace);

/// Folded flamegraph stacks ("run1;node5;node12 <weight>"), one frame per
/// overlay node along the probe's causal chain, weighted by the probe's own
/// span in sim-µs and aggregated across requests — feed to flamegraph.pl /
/// speedscope / inferno to see hot node chains.
ExportStats export_folded_stacks(std::ostream& os, const TraceData& trace);

// ---- attribution artifacts (--attribution-out JSONL, schema acp-attr/1) --------

/// One --attribution-out artifact (obs/attribution.h), decoded.
struct AttrDoc {
  std::string schema;
  std::string bench;
  std::string git_sha;
  std::uint64_t seed = 0;
  bool quick = false;
  struct Row {  ///< deterministic sim-cost row (type "attr")
    std::string phase;
    std::int64_t node = -1;
    std::int64_t fn = -1;
    std::uint64_t count = 0;
    double sim_s = 0.0;
  };
  struct Wait {  ///< event-queue wait row (type "attr_wait")
    std::string kind;
    std::uint64_t count = 0;
    double sim_s = 0.0;
  };
  struct Host {  ///< wall-clock row (type "attr_host"), identity-exempt
    std::string phase;
    std::int64_t node = -1;
    std::uint64_t count = 0;
    double wall_s = 0.0;
  };
  std::vector<Row> rows;
  std::vector<Wait> waits;
  std::vector<Host> host;
  std::uint64_t total_count = 0;  ///< from the trailing attr_total row
  double total_sim_s = 0.0;
};

/// Reads an acp-attr/1 JSONL artifact. Throws PreconditionError on a
/// malformed line or a missing/unknown schema header.
AttrDoc load_attribution(std::istream& in);
AttrDoc load_attribution_file(const std::string& path);

/// Folded stacks from attribution rows ("attr;<phase>;node5;fn2 <weight>"),
/// weighted by sim-µs — or by count for phases that charge no sim time
/// (e.g. rank). Complements export_folded_stacks in one flamegraph input.
ExportStats export_attribution_folded(std::ostream& os, const AttrDoc& attr);

/// Reconciles an attribution artifact against the BENCH report of the SAME
/// run: for each protocol phase with a profiler-scope counterpart (probe ↔
/// probing.process_probe, rank ↔ probing.rank_candidates, finalize ↔
/// probing.finalize) the attr_host row counts summed over nodes must equal
/// the scope count EXACTLY (both sides count the same call sites), and the
/// summed wall seconds must agree within `max_wall_ratio` (instrumentation
/// overhead differs slightly, so this is ratio-gated and skipped for scopes
/// cheaper than a few ms). CI runs this so attribution can never silently
/// drift from what the profiler measures.
DiffResult reconcile_attribution(const AttrDoc& attr, const BenchDoc& bench,
                                 double max_wall_ratio = 4.0);
void write_reconcile(std::ostream& os, const AttrDoc& attr, const BenchDoc& bench,
                     const DiffResult& result);

}  // namespace acp::tracecli
