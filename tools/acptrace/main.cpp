// acptrace — CLI over acptrace_lib. Subcommands:
//
//   acptrace analyze <trace.jsonl> [--top=N]
//       Per-request critical-path and hop-latency breakdowns.
//
//   acptrace validate <trace.jsonl>
//       Span-invariant check; exit 1 when any violation is found.
//
//   acptrace diff <baseline.json> <current.json> [threshold flags]
//       Perf-regression gate over two BENCH_<name>.json reports.
//       Threshold flags (defaults in acptrace_lib.h):
//         --max-wall-ratio=R --max-scope-ratio=R --min-scope-total-s=S
//         --max-success-drop=D --max-overhead-ratio=R --max-phi-ratio=R
//       --require-identical-sim additionally demands every deterministic
//       sim observable (headline metrics, runs, counter totals) match the
//       baseline exactly — the --jobs invariance gate.
//       Exit 1 when any threshold is breached.
//
// Exit codes: 0 ok, 1 violations/regressions found, 2 usage or I/O error.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "acptrace/acptrace_lib.h"
#include "util/flags.h"

namespace {

using namespace acp;

int usage() {
  std::fprintf(stderr,
               "usage: acptrace analyze <trace.jsonl> [--top=N]\n"
               "       acptrace validate <trace.jsonl>\n"
               "       acptrace diff <baseline.json> <current.json>\n"
               "           [--max-wall-ratio=R] [--max-scope-ratio=R]\n"
               "           [--min-scope-total-s=S] [--max-success-drop=D]\n"
               "           [--max-overhead-ratio=R] [--max-phi-ratio=R]\n"
               "           [--require-identical-sim]\n");
  return 2;
}

int cmd_analyze(const std::vector<std::string>& paths, util::Flags& flags) {
  if (paths.size() != 1) return usage();
  const auto top = static_cast<std::size_t>(flags.get_int("top", 5));
  const auto analysis = tracecli::analyze(tracecli::load_trace_file(paths[0]), top);
  tracecli::write_analysis(std::cout, analysis);
  return 0;
}

int cmd_validate(const std::vector<std::string>& paths) {
  if (paths.size() != 1) return usage();
  const auto trace = tracecli::load_trace_file(paths[0]);
  const auto violations = tracecli::validate(trace);
  if (violations.empty()) {
    std::printf("OK: %llu events, all span invariants hold%s\n",
                static_cast<unsigned long long>(trace.lines),
                trace.truncated ? " (trace truncated; balance checks skipped)" : "");
    return 0;
  }
  for (const auto& v : violations) std::printf("VIOLATION: %s\n", v.what.c_str());
  std::printf("%zu violation(s) in %llu events\n", violations.size(),
              static_cast<unsigned long long>(trace.lines));
  return 1;
}

int cmd_diff(const std::vector<std::string>& paths, util::Flags& flags) {
  if (paths.size() != 2) return usage();
  tracecli::DiffThresholds th;
  th.max_wall_ratio = flags.get_double("max-wall-ratio", th.max_wall_ratio);
  th.max_scope_ratio = flags.get_double("max-scope-ratio", th.max_scope_ratio);
  th.min_scope_total_s = flags.get_double("min-scope-total-s", th.min_scope_total_s);
  th.max_success_drop = flags.get_double("max-success-drop", th.max_success_drop);
  th.max_overhead_ratio = flags.get_double("max-overhead-ratio", th.max_overhead_ratio);
  th.max_phi_ratio = flags.get_double("max-phi-ratio", th.max_phi_ratio);
  th.require_identical_sim = flags.get_bool("require-identical-sim", th.require_identical_sim);

  const auto base = tracecli::load_bench_file(paths[0]);
  const auto current = tracecli::load_bench_file(paths[1]);
  const auto result = tracecli::diff(base, current, th);
  tracecli::write_diff(std::cout, base, current, result);
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  // Flags and positional paths, after the subcommand.
  util::Flags flags(argc - 1, argv + 1);
  const std::vector<std::string> paths = flags.positional();

  try {
    if (cmd == "analyze") return cmd_analyze(paths, flags);
    if (cmd == "validate") return cmd_validate(paths);
    if (cmd == "diff") return cmd_diff(paths, flags);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acptrace: %s\n", e.what());
    return 2;
  }
}
