// acptrace — CLI over acptrace_lib. Subcommands:
//
//   acptrace analyze <trace.jsonl> [--top=N]
//       Per-request critical-path and hop-latency breakdowns.
//
//   acptrace validate <trace.jsonl>
//       Span-invariant check; exit 1 when any violation is found.
//
//   acptrace diff <baseline.json> <current.json> [threshold flags]
//       Perf-regression gate over two BENCH_<name>.json reports.
//       Threshold flags (defaults in acptrace_lib.h):
//         --max-wall-ratio=R --max-scope-ratio=R --min-scope-total-s=S
//         --max-success-drop=D --max-overhead-ratio=R --max-phi-ratio=R
//         --min-events-rate-ratio=R --max-rss-ratio=R
//       --require-identical-sim additionally demands every deterministic
//       sim observable (headline metrics, runs, counter totals) match the
//       baseline exactly — the --jobs invariance gate.
//       When both files are timeline JSONL (--timeline-out artifacts,
//       sniffed by the schema marker on the first line), diff instead runs
//       the timeline identity gate: every deterministic row (run_start,
//       sample) must match byte-for-byte; host_sample rows are exempt.
//       Exit 1 when any threshold is breached.
//
//   acptrace timeline <timeline.jsonl> [--steady-tol=F] [--window=N]
//       Sim-time telemetry summary per run: steady-state window, per-series
//       min/max/mean/anomalies, coarse window rates.
//
//   acptrace explain <trace.jsonl> (--req=N | --session=N) [--run=N]
//       Causal span tree of one request (or the request that created a
//       session): probes nested under the probe that spawned them, critical
//       path marked, failure-reason rollup for unsuccessful requests.
//
//   acptrace export <trace.jsonl> [--chrome=OUT.json] [--folded=OUT.folded]
//                   [--attribution=ATTR.jsonl]
//       Span-tree dumps for external viewers: Chrome Trace Event JSON
//       (Perfetto / chrome://tracing; pid=run, tid=req) and/or folded
//       flamegraph stacks (flamegraph.pl / speedscope). --attribution
//       appends per-phase cost stacks from an --attribution-out artifact
//       to the folded output.
//
//   acptrace reconcile <attr.jsonl> <BENCH.json> [--max-wall-ratio=R]
//       Cross-checks an --attribution-out artifact against the BENCH
//       report of the same run: per-phase counts must equal the profiler
//       scope counts exactly; wall time must agree within the ratio.
//
// Exit codes: 0 ok, 1 violations/regressions/no-match found, 2 usage or
// I/O error, 3 baseline missing/unparseable (diff only — lets CI
// distinguish "perf regressed" from "no baseline to compare against").
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "acptrace/acptrace_lib.h"
#include "util/error.h"
#include "util/flags.h"

namespace {

using namespace acp;

int usage() {
  std::fprintf(stderr,
               "usage: acptrace analyze <trace.jsonl> [--top=N]\n"
               "       acptrace validate <trace.jsonl>\n"
               "       acptrace diff <baseline.json> <current.json>\n"
               "           [--max-wall-ratio=R] [--max-scope-ratio=R]\n"
               "           [--min-scope-total-s=S] [--max-success-drop=D]\n"
               "           [--max-overhead-ratio=R] [--max-phi-ratio=R]\n"
               "           [--min-events-rate-ratio=R] [--max-rss-ratio=R]\n"
               "           [--require-identical-sim]\n"
               "       acptrace diff <baseline.jsonl> <current.jsonl>   (timeline mode)\n"
               "       acptrace timeline <timeline.jsonl> [--steady-tol=F] [--window=N]\n"
               "       acptrace explain <trace.jsonl> (--req=N | --session=N) [--run=N]\n"
               "       acptrace export <trace.jsonl> [--chrome=OUT.json] [--folded=OUT]\n"
               "           [--attribution=ATTR.jsonl]\n"
               "       acptrace reconcile <attr.jsonl> <BENCH.json> [--max-wall-ratio=R]\n"
               "exit codes: 0 ok; 1 violations, regressions, or no matching request;\n"
               "            2 usage or I/O error; 3 baseline missing/unparseable (diff)\n");
  return 2;
}

int cmd_analyze(const std::vector<std::string>& paths, util::Flags& flags) {
  if (paths.size() != 1) return usage();
  const auto top = static_cast<std::size_t>(flags.get_int("top", 5));
  const auto analysis = tracecli::analyze(tracecli::load_trace_file(paths[0]), top);
  tracecli::write_analysis(std::cout, analysis);
  return 0;
}

int cmd_validate(const std::vector<std::string>& paths) {
  if (paths.size() != 1) return usage();
  const auto trace = tracecli::load_trace_file(paths[0]);
  const auto violations = tracecli::validate(trace);
  if (violations.empty()) {
    std::printf("OK: %llu events, all span invariants hold%s\n",
                static_cast<unsigned long long>(trace.lines),
                trace.truncated ? " (trace truncated; balance checks skipped)" : "");
    return 0;
  }
  for (const auto& v : violations) std::printf("VIOLATION: %s\n", v.what.c_str());
  std::printf("%zu violation(s) in %llu events\n", violations.size(),
              static_cast<unsigned long long>(trace.lines));
  return 1;
}

int cmd_diff(const std::vector<std::string>& paths, util::Flags& flags) {
  if (paths.size() != 2) return usage();
  tracecli::DiffThresholds th;
  th.max_wall_ratio = flags.get_double("max-wall-ratio", th.max_wall_ratio);
  th.max_scope_ratio = flags.get_double("max-scope-ratio", th.max_scope_ratio);
  th.min_scope_total_s = flags.get_double("min-scope-total-s", th.min_scope_total_s);
  th.max_success_drop = flags.get_double("max-success-drop", th.max_success_drop);
  th.max_overhead_ratio = flags.get_double("max-overhead-ratio", th.max_overhead_ratio);
  th.max_phi_ratio = flags.get_double("max-phi-ratio", th.max_phi_ratio);
  th.min_events_rate_ratio = flags.get_double("min-events-rate-ratio", th.min_events_rate_ratio);
  th.max_rss_ratio = flags.get_double("max-rss-ratio", th.max_rss_ratio);
  th.require_identical_sim = flags.get_bool("require-identical-sim", th.require_identical_sim);

  // Timeline mode: both artifacts are --timeline-out JSONL streams. The
  // current file decides the mode so a missing baseline of either kind
  // still lands in the exit-3 path below.
  if (tracecli::is_timeline_file(paths[1])) {
    tracecli::TimelineData base;
    try {
      base = tracecli::load_timeline_file(paths[0]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "acptrace: bad baseline %s: %s\n", paths[0].c_str(), e.what());
      return 3;
    }
    const auto current = tracecli::load_timeline_file(paths[1]);
    const auto result = tracecli::diff_timelines(base, current);
    tracecli::write_timeline_diff(std::cout, base, current, result);
    return result.ok() ? 0 : 1;
  }

  tracecli::BenchDoc base;
  try {
    base = tracecli::load_bench_file(paths[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acptrace: bad baseline %s: %s\n", paths[0].c_str(), e.what());
    return 3;
  }
  const auto current = tracecli::load_bench_file(paths[1]);
  const auto result = tracecli::diff(base, current, th);
  tracecli::write_diff(std::cout, base, current, result);
  return result.ok() ? 0 : 1;
}

int cmd_explain(const std::vector<std::string>& paths, util::Flags& flags) {
  if (paths.size() != 1) return usage();
  const std::int64_t req = flags.get_int("req", -1);
  const std::int64_t session = flags.get_int("session", -1);
  if ((req < 0) == (session < 0)) return usage();  // exactly one selector
  tracecli::ExplainQuery q;
  q.by_session = session >= 0;
  q.id = static_cast<std::uint64_t>(q.by_session ? session : req);
  q.run = static_cast<std::uint64_t>(flags.get_int("run", 0));
  const auto trace = tracecli::load_trace_file(paths[0]);
  const std::size_t matched = tracecli::explain(std::cout, trace, q);
  if (matched == 0) {
    std::fprintf(stderr, "acptrace: no %s %llu in %s%s\n", q.by_session ? "session" : "req",
                 static_cast<unsigned long long>(q.id), paths[0].c_str(),
                 q.run != 0 ? " (within the requested run)" : "");
    return 1;
  }
  return 0;
}

int cmd_export(const std::vector<std::string>& paths, util::Flags& flags) {
  if (paths.size() != 1) return usage();
  const std::string chrome = flags.get_string("chrome", "");
  const std::string folded = flags.get_string("folded", "");
  const std::string attr_path = flags.get_string("attribution", "");
  if (chrome.empty() && folded.empty()) return usage();

  const auto trace = tracecli::load_trace_file(paths[0]);
  if (!chrome.empty()) {
    std::ofstream out(chrome);
    if (!out) throw acp::PreconditionError("cannot open for writing: " + chrome);
    const auto st = tracecli::export_chrome_trace(out, trace);
    std::printf("chrome trace: %llu request spans, %llu probe spans -> %s\n",
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.probe_spans), chrome.c_str());
  }
  if (!folded.empty()) {
    std::ofstream out(folded);
    if (!out) throw acp::PreconditionError("cannot open for writing: " + folded);
    auto st = tracecli::export_folded_stacks(out, trace);
    if (!attr_path.empty()) {
      const auto attr = tracecli::load_attribution_file(attr_path);
      st.stacks += tracecli::export_attribution_folded(out, attr).stacks;
    }
    std::printf("folded stacks: %llu lines (%llu probe spans) -> %s\n",
                static_cast<unsigned long long>(st.stacks),
                static_cast<unsigned long long>(st.probe_spans), folded.c_str());
  }
  return 0;
}

int cmd_reconcile(const std::vector<std::string>& paths, util::Flags& flags) {
  if (paths.size() != 2) return usage();
  const auto attr = tracecli::load_attribution_file(paths[0]);
  const auto bench = tracecli::load_bench_file(paths[1]);
  const auto result = tracecli::reconcile_attribution(
      attr, bench, flags.get_double("max-wall-ratio", 4.0));
  tracecli::write_reconcile(std::cout, attr, bench, result);
  return result.ok() ? 0 : 1;
}

int cmd_timeline(const std::vector<std::string>& paths, util::Flags& flags) {
  if (paths.size() != 1) return usage();
  const auto data = tracecli::load_timeline_file(paths[0]);
  const auto analysis =
      tracecli::analyze_timeline(data, flags.get_double("steady-tol", 0.1),
                                 static_cast<std::size_t>(flags.get_int("window", 0)));
  tracecli::write_timeline_analysis(std::cout, analysis);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  // Flags and positional paths, after the subcommand.
  util::Flags flags(argc - 1, argv + 1);
  const std::vector<std::string> paths = flags.positional();

  try {
    if (cmd == "analyze") return cmd_analyze(paths, flags);
    if (cmd == "validate") return cmd_validate(paths);
    if (cmd == "diff") return cmd_diff(paths, flags);
    if (cmd == "timeline") return cmd_timeline(paths, flags);
    if (cmd == "explain") return cmd_explain(paths, flags);
    if (cmd == "export") return cmd_export(paths, flags);
    if (cmd == "reconcile") return cmd_reconcile(paths, flags);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "acptrace: %s\n", e.what());
    return 2;
  }
}
